//! The TLB array: set-associative translation cache with pending-capable
//! entries.

use swgpu_types::{Pfn, Vpn};

/// Geometry of one TLB.
#[derive(Debug, Clone)]
pub struct TlbConfig {
    /// Human-readable name for stats dumps ("L1TLB", "L2TLB").
    pub name: String,
    /// Total entries.
    pub entries: usize,
    /// Ways per set; set `assoc == entries` for a fully-associative TLB.
    pub assoc: usize,
}

impl TlbConfig {
    /// Table 3 per-SM L1 TLB: 32 entries, fully associative.
    pub fn l1() -> Self {
        Self {
            name: "L1TLB".into(),
            entries: 32,
            assoc: 32,
        }
    }

    /// Table 3 shared L2 TLB: 1024 entries, 16-way.
    pub fn l2() -> Self {
        Self {
            name: "L2TLB".into(),
            entries: 1024,
            assoc: 16,
        }
    }

    fn num_sets(&self) -> usize {
        self.entries / self.assoc
    }

    fn validate(&self) {
        assert!(self.entries > 0 && self.assoc > 0, "TLB cannot be empty");
        assert_eq!(
            self.entries % self.assoc,
            0,
            "entries must be a multiple of associativity"
        );
        assert!(
            self.num_sets().is_power_of_two(),
            "number of sets must be a power of two"
        );
    }
}

/// Per-TLB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that found a valid translation.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Translations installed.
    pub fills: u64,
    /// Valid translations evicted to make room (for fills or pending
    /// reservations).
    pub evictions: u64,
}

impl TlbStats {
    /// Hit rate over all lookups (0 for an idle TLB).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// State of one TLB entry. `Pending` is the In-TLB MSHR state from the
/// paper's Figure 13: the entry holds metadata for an outstanding miss
/// instead of a translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    Invalid,
    Valid,
    Pending,
}

#[derive(Debug, Clone)]
struct Entry {
    state: EntryState,
    vpn: Vpn,
    pfn: Pfn,
    last_used: u64,
}

impl Entry {
    fn invalid() -> Self {
        Entry {
            state: EntryState::Invalid,
            vpn: Vpn::new(0),
            pfn: Pfn::new(0),
            last_used: 0,
        }
    }
}

/// A set-associative TLB with LRU replacement.
///
/// # Example
///
/// ```
/// use swgpu_tlb::{Tlb, TlbConfig};
/// use swgpu_types::{Pfn, Vpn};
///
/// let mut tlb = Tlb::new(TlbConfig::l1());
/// assert_eq!(tlb.lookup(Vpn::new(5)), None);
/// tlb.fill(Vpn::new(5), Pfn::new(0x40));
/// assert_eq!(tlb.lookup(Vpn::new(5)), Some(Pfn::new(0x40)));
/// ```
#[derive(Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    sets: Vec<Vec<Entry>>,
    tick: u64,
    pending_count: usize,
    stats: TlbStats,
}

impl Tlb {
    /// Builds a TLB from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see [`TlbConfig`]).
    pub fn new(cfg: TlbConfig) -> Self {
        cfg.validate();
        let sets = vec![vec![Entry::invalid(); cfg.assoc]; cfg.num_sets()];
        Self {
            cfg,
            sets,
            tick: 0,
            pending_count: 0,
            stats: TlbStats::default(),
        }
    }

    /// The TLB's configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Number of entries currently repurposed as In-TLB MSHRs.
    pub fn pending_entries(&self) -> usize {
        self.pending_count
    }

    fn set_of(&self, vpn: Vpn) -> usize {
        (vpn.value() as usize) & (self.sets.len() - 1)
    }

    /// Looks up a translation, updating statistics and LRU state.
    pub fn lookup(&mut self, vpn: Vpn) -> Option<Pfn> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(vpn);
        for e in &mut self.sets[set] {
            if e.state == EntryState::Valid && e.vpn == vpn {
                e.last_used = tick;
                self.stats.hits += 1;
                return Some(e.pfn);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Non-destructive probe: no statistics or LRU update.
    pub fn probe(&self, vpn: Vpn) -> Option<Pfn> {
        let set = self.set_of(vpn);
        self.sets[set]
            .iter()
            .find(|e| e.state == EntryState::Valid && e.vpn == vpn)
            .map(|e| e.pfn)
    }

    /// Installs a translation. Victim preference: an entry already holding
    /// this VPN, then an invalid way, then the LRU *valid* way. Pending
    /// ways are never displaced by ordinary fills; if every way is pending
    /// the fill is dropped (the translation was still delivered to its
    /// requesters) and `false` is returned.
    pub fn fill(&mut self, vpn: Vpn, pfn: Pfn) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(vpn);
        let ways = &mut self.sets[set];

        let way = if let Some(i) = ways
            .iter()
            .position(|e| e.state == EntryState::Valid && e.vpn == vpn)
        {
            Some(i)
        } else if let Some(i) = ways.iter().position(|e| e.state == EntryState::Invalid) {
            Some(i)
        } else {
            let victim = ways
                .iter()
                .enumerate()
                .filter(|(_, e)| e.state == EntryState::Valid)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i);
            if victim.is_some() {
                self.stats.evictions += 1;
            }
            victim
        };

        match way {
            Some(i) => {
                ways[i] = Entry {
                    state: EntryState::Valid,
                    vpn,
                    pfn,
                    last_used: tick,
                };
                self.stats.fills += 1;
                true
            }
            None => false,
        }
    }

    /// Reserves a victim entry in `vpn`'s set as an In-TLB MSHR (Figure 13
    /// steps 2-3). Victim preference: invalid way, then LRU valid way
    /// (evicting its translation). Fails if every way in the set is
    /// already pending — the per-set bottleneck that limits spmv in the
    /// paper's Figure 24 discussion.
    pub fn reserve_pending(&mut self, vpn: Vpn) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(vpn);
        let ways = &mut self.sets[set];

        let way = if let Some(i) = ways.iter().position(|e| e.state == EntryState::Invalid) {
            Some(i)
        } else {
            let victim = ways
                .iter()
                .enumerate()
                .filter(|(_, e)| e.state == EntryState::Valid)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i);
            if victim.is_some() {
                self.stats.evictions += 1;
            }
            victim
        };

        match way {
            Some(i) => {
                ways[i] = Entry {
                    state: EntryState::Pending,
                    vpn,
                    pfn: Pfn::new(0),
                    last_used: tick,
                };
                self.pending_count += 1;
                true
            }
            None => false,
        }
    }

    /// Whether `vpn`'s set already holds a pending reservation for this
    /// exact VPN (tag match — enables In-TLB MSHR merging).
    pub fn has_pending(&self, vpn: Vpn) -> bool {
        let set = self.set_of(vpn);
        self.sets[set]
            .iter()
            .any(|e| e.state == EntryState::Pending && e.vpn == vpn)
    }

    /// Completes an In-TLB-tracked miss (Figure 13 steps 4-6): clears the
    /// pending bit of every tag-matching way and installs the translation
    /// into one of them. Returns the number of pending ways cleared.
    pub fn clear_pending_and_fill(&mut self, vpn: Vpn, pfn: Pfn) -> usize {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(vpn);
        let mut cleared = 0;
        let mut filled = false;
        for e in &mut self.sets[set] {
            if e.state == EntryState::Pending && e.vpn == vpn {
                cleared += 1;
                if filled {
                    *e = Entry::invalid();
                } else {
                    e.state = EntryState::Valid;
                    e.pfn = pfn;
                    e.last_used = tick;
                    filled = true;
                    self.stats.fills += 1;
                }
            }
        }
        self.pending_count -= cleared;
        cleared
    }

    /// Aborts an In-TLB-tracked miss without installing a translation
    /// (page-fault path): every tag-matching pending way is invalidated.
    /// Returns the number of ways cleared.
    pub fn clear_pending(&mut self, vpn: Vpn) -> usize {
        let set = self.set_of(vpn);
        let mut cleared = 0;
        for e in &mut self.sets[set] {
            if e.state == EntryState::Pending && e.vpn == vpn {
                *e = Entry::invalid();
                cleared += 1;
            }
        }
        self.pending_count -= cleared;
        cleared
    }

    /// Invalidates the valid translation for one VPN (single-page TLB
    /// shootdown — the memory manager's eviction path). Pending (In-TLB
    /// MSHR) ways are left alone: their in-flight walk will observe the
    /// updated page table and complete or fault on its own. Returns
    /// whether a valid entry was dropped.
    pub fn invalidate(&mut self, vpn: Vpn) -> bool {
        let set = self.set_of(vpn);
        for e in &mut self.sets[set] {
            if e.state == EntryState::Valid && e.vpn == vpn {
                *e = Entry::invalid();
                return true;
            }
        }
        false
    }

    /// Invalidates every entry (TLB shootdown / address-space switch).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for e in set {
                *e = Entry::invalid();
            }
        }
        self.pending_count = 0;
    }

    /// Number of valid translations currently cached.
    pub fn valid_entries(&self) -> usize {
        self.sets
            .iter()
            .flatten()
            .filter(|e| e.state == EntryState::Valid)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        // 2 sets x 2 ways.
        Tlb::new(TlbConfig {
            name: "tiny".into(),
            entries: 4,
            assoc: 2,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut t = tiny();
        assert_eq!(t.lookup(Vpn::new(8)), None);
        t.fill(Vpn::new(8), Pfn::new(3));
        assert_eq!(t.lookup(Vpn::new(8)), Some(Pfn::new(3)));
        let s = t.stats();
        assert_eq!((s.hits, s.misses, s.fills), (1, 1, 1));
    }

    #[test]
    fn probe_does_not_touch_stats() {
        let mut t = tiny();
        t.fill(Vpn::new(1), Pfn::new(1));
        assert_eq!(t.probe(Vpn::new(1)), Some(Pfn::new(1)));
        assert_eq!(t.probe(Vpn::new(9)), None);
        assert_eq!(t.stats().hits + t.stats().misses, 0);
    }

    #[test]
    fn lru_eviction_in_set() {
        let mut t = tiny();
        // VPNs 0, 2, 4 all map to set 0 (2 sets).
        t.fill(Vpn::new(0), Pfn::new(10));
        t.fill(Vpn::new(2), Pfn::new(12));
        t.lookup(Vpn::new(0)); // refresh 0; 2 is LRU
        t.fill(Vpn::new(4), Pfn::new(14));
        assert_eq!(t.probe(Vpn::new(0)), Some(Pfn::new(10)));
        assert_eq!(t.probe(Vpn::new(2)), None, "LRU way evicted");
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn refill_same_vpn_updates_in_place() {
        let mut t = tiny();
        t.fill(Vpn::new(6), Pfn::new(1));
        t.fill(Vpn::new(6), Pfn::new(2));
        assert_eq!(t.probe(Vpn::new(6)), Some(Pfn::new(2)));
        assert_eq!(t.valid_entries(), 1);
        assert_eq!(t.stats().evictions, 0);
    }

    #[test]
    fn pending_reservation_survives_fills() {
        let mut t = tiny();
        assert!(t.reserve_pending(Vpn::new(0)));
        assert!(t.has_pending(Vpn::new(0)));
        assert_eq!(t.pending_entries(), 1);
        // Fill two other lines into set 0 — only one non-pending way left,
        // so the second fill evicts the first; the pending way is untouched.
        t.fill(Vpn::new(2), Pfn::new(1));
        t.fill(Vpn::new(4), Pfn::new(2));
        assert!(t.has_pending(Vpn::new(0)));
        assert_eq!(t.probe(Vpn::new(4)), Some(Pfn::new(2)));
        assert_eq!(t.probe(Vpn::new(2)), None);
    }

    #[test]
    fn fill_fails_when_all_ways_pending() {
        let mut t = tiny();
        assert!(t.reserve_pending(Vpn::new(0)));
        assert!(t.reserve_pending(Vpn::new(2)));
        assert!(!t.fill(Vpn::new(4), Pfn::new(9)), "no way available");
        assert!(!t.reserve_pending(Vpn::new(6)), "set exhausted");
    }

    #[test]
    fn pending_lookup_is_a_miss() {
        let mut t = tiny();
        t.reserve_pending(Vpn::new(0));
        assert_eq!(t.lookup(Vpn::new(0)), None, "pending entries do not hit");
    }

    #[test]
    fn clear_pending_resolves_all_matching_ways() {
        let mut t = tiny();
        assert!(t.reserve_pending(Vpn::new(0)));
        assert!(t.reserve_pending(Vpn::new(0)), "tag-matching merge allowed");
        assert_eq!(t.pending_entries(), 2);
        let cleared = t.clear_pending_and_fill(Vpn::new(0), Pfn::new(77));
        assert_eq!(cleared, 2);
        assert_eq!(t.pending_entries(), 0);
        assert_eq!(t.probe(Vpn::new(0)), Some(Pfn::new(77)));
        // Exactly one way holds the translation; the other was freed.
        assert_eq!(t.valid_entries(), 1);
    }

    #[test]
    fn reserving_evicts_valid_translation() {
        let mut t = tiny();
        t.fill(Vpn::new(0), Pfn::new(1));
        t.fill(Vpn::new(2), Pfn::new(2));
        assert!(t.reserve_pending(Vpn::new(4)));
        assert_eq!(t.stats().evictions, 1, "pollution is real");
        assert_eq!(t.valid_entries(), 1);
    }

    #[test]
    fn invalidate_targets_one_vpn_and_spares_pending() {
        let mut t = tiny();
        // Even VPNs share set 0; the pending way goes to set 1 so the
        // reservation does not evict a valid entry first.
        t.fill(Vpn::new(0), Pfn::new(1));
        t.fill(Vpn::new(2), Pfn::new(2));
        t.reserve_pending(Vpn::new(5));
        assert!(t.invalidate(Vpn::new(0)));
        assert!(!t.invalidate(Vpn::new(0)), "already gone");
        assert!(!t.invalidate(Vpn::new(5)), "pending ways are spared");
        assert_eq!(t.probe(Vpn::new(0)), None);
        assert_eq!(t.probe(Vpn::new(2)), Some(Pfn::new(2)));
        assert_eq!(t.pending_entries(), 1);
        assert_eq!(t.stats().evictions, 0, "shootdown is not an eviction");
    }

    #[test]
    fn flush_clears_everything() {
        let mut t = tiny();
        t.fill(Vpn::new(0), Pfn::new(1));
        t.reserve_pending(Vpn::new(2));
        t.flush();
        assert_eq!(t.valid_entries(), 0);
        assert_eq!(t.pending_entries(), 0);
    }

    #[test]
    fn hit_rate() {
        let mut t = tiny();
        t.fill(Vpn::new(0), Pfn::new(1));
        t.lookup(Vpn::new(0));
        t.lookup(Vpn::new(2));
        assert!((t.stats().hit_rate() - 0.5).abs() < 1e-12);
    }
}
