//! The TLB array: set-associative translation cache with pending-capable
//! entries, pluggable replacement, and ASID-keyed tags.
//!
//! Every tag is the pair `(Asid, Vpn)`: two tenants caching the same
//! virtual page occupy distinct ways (unless the opt-in sub-entry
//! sharing mode merges identically-mapped entries), and a shootdown or
//! flush scoped to one ASID can never disturb another tenant's
//! translations. Single-tenant callers pass [`Asid::ZERO`] everywhere
//! and observe exactly the pre-ASID behaviour: the set index is derived
//! from the VPN alone, so ASID 0 traffic hashes, evicts, and counts
//! identically to the un-keyed array.

use swgpu_types::{Asid, Pfn, Vpn};

/// Replacement policy for victim selection in [`Tlb::fill`] and
/// [`Tlb::reserve_pending`] (the latter is the In-TLB MSHR victim path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReplPolicy {
    /// Least-recently-used among valid ways (the baseline).
    #[default]
    Lru,
    /// Dead-on-arrival protection: a per-set saturating reuse sampler
    /// learns whether fills into this set tend to die untouched, marks
    /// incoming fills predicted-dead accordingly, and the victim picker
    /// prefers (1) dead unused prefetches, (2) any predicted-dead entry,
    /// before falling back to plain LRU. PC-free, per-set state only.
    DeadBlock,
}

/// Geometry of one TLB.
#[derive(Debug, Clone)]
pub struct TlbConfig {
    /// Human-readable name for stats dumps ("L1TLB", "L2TLB").
    pub name: String,
    /// Total entries.
    pub entries: usize,
    /// Ways per set; set `assoc == entries` for a fully-associative TLB.
    pub assoc: usize,
    /// Victim-selection policy shared by fills and pending reservations.
    pub repl: ReplPolicy,
}

impl TlbConfig {
    /// Table 3 per-SM L1 TLB: 32 entries, fully associative.
    pub fn l1() -> Self {
        Self {
            name: "L1TLB".into(),
            entries: 32,
            assoc: 32,
            repl: ReplPolicy::Lru,
        }
    }

    /// Table 3 shared L2 TLB: 1024 entries, 16-way.
    pub fn l2() -> Self {
        Self {
            name: "L2TLB".into(),
            entries: 1024,
            assoc: 16,
            repl: ReplPolicy::Lru,
        }
    }

    fn num_sets(&self) -> usize {
        self.entries / self.assoc
    }

    fn validate(&self) {
        assert!(self.entries > 0 && self.assoc > 0, "TLB cannot be empty");
        assert_eq!(
            self.entries % self.assoc,
            0,
            "entries must be a multiple of associativity"
        );
        assert!(
            self.num_sets().is_power_of_two(),
            "number of sets must be a power of two"
        );
    }
}

/// Per-TLB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that found a valid translation.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Translations installed.
    pub fills: u64,
    /// Valid translations evicted to make room (for fills or pending
    /// reservations).
    pub evictions: u64,
    /// Fills installed with the dead-on-arrival prediction set
    /// (always 0 under [`ReplPolicy::Lru`]).
    pub dead_fills: u64,
    /// First demand hit on a prefetched translation (each prefetched
    /// entry is counted at most once — its "useful" event).
    pub prefetch_hits: u64,
    /// Prefetched translations that left the TLB (evicted, overwritten,
    /// invalidated, flushed, or dropped at install) before any demand
    /// hit.
    pub prefetch_evictions: u64,
    /// Fills absorbed by an existing identically-mapped entry of another
    /// ASID (sub-entry sharing mode only; always 0 otherwise). Each join
    /// is a fill that consumed no way.
    pub shared_joins: u64,
}

impl TlbStats {
    /// Hit rate over all lookups (0 for an idle TLB).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// State of one TLB entry. `Pending` is the In-TLB MSHR state from the
/// paper's Figure 13: the entry holds metadata for an outstanding miss
/// instead of a translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    Invalid,
    Valid,
    Pending,
}

#[derive(Debug, Clone)]
struct Entry {
    state: EntryState,
    /// Owning address space. Pending ways are always single-ASID.
    asid: Asid,
    vpn: Vpn,
    pfn: Pfn,
    last_used: u64,
    /// Sub-entry sharing bitmask: additional ASIDs (beyond the owner)
    /// whose identical mapping this entry serves. Always 0 outside the
    /// opt-in sharing mode.
    shared: u16,
    /// Installed by a translation prefetch rather than a demand walk.
    prefetched: bool,
    /// Hit at least once since installation.
    touched: bool,
    /// Predicted dead-on-arrival at install time (DeadBlock only).
    dead: bool,
}

impl Entry {
    fn invalid() -> Self {
        Entry {
            state: EntryState::Invalid,
            asid: Asid::ZERO,
            vpn: Vpn::new(0),
            pfn: Pfn::new(0),
            last_used: 0,
            shared: 0,
            prefetched: false,
            touched: false,
            dead: false,
        }
    }

    /// Whether this entry serves `(asid, vpn)` — as owner or (in sharing
    /// mode) via its sub-entry bitmask. State is *not* checked.
    fn serves(&self, asid: Asid, vpn: Vpn) -> bool {
        self.vpn == vpn && (self.asid == asid || self.shared & asid_bit(asid) != 0)
    }
}

/// The sub-entry bitmask bit for an ASID. The mask is 16 bits wide —
/// plenty for the 2–8 tenants a multi-tenant configuration allows.
fn asid_bit(asid: Asid) -> u16 {
    1u16 << (asid.index() & 15)
}

/// Per-set dead-on-arrival sampler bounds: the score saturates in
/// `[SCORE_MIN, SCORE_MAX]` and fills are predicted dead at
/// `>= DEAD_THRESHOLD`. An untouched victim is evidence for death (+1),
/// a touched victim is evidence of reuse (-1).
const SCORE_MIN: i8 = -8;
const SCORE_MAX: i8 = 7;
const DEAD_THRESHOLD: i8 = 2;

/// A set-associative, ASID-tagged TLB with pluggable replacement.
///
/// # Example
///
/// ```
/// use swgpu_tlb::{Tlb, TlbConfig};
/// use swgpu_types::{Asid, Pfn, Vpn};
///
/// let mut tlb = Tlb::new(TlbConfig::l1());
/// assert_eq!(tlb.lookup(Asid::ZERO, Vpn::new(5)), None);
/// tlb.fill(Asid::ZERO, Vpn::new(5), Pfn::new(0x40));
/// assert_eq!(tlb.lookup(Asid::ZERO, Vpn::new(5)), Some(Pfn::new(0x40)));
/// // A second tenant's identical VPN is a distinct tag.
/// assert_eq!(tlb.lookup(Asid::new(1), Vpn::new(5)), None);
/// ```
#[derive(Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    sets: Vec<Vec<Entry>>,
    /// Per-set dead-on-arrival score (all zeros under Lru).
    scores: Vec<i8>,
    /// Per-ASID way window for fills/reservations (MIG-style static
    /// partitioning). Lookups still search the whole set.
    way_partition: Option<Vec<std::ops::Range<usize>>>,
    /// Opt-in sub-entry sharing: identically-mapped `(vpn, pfn)` pairs
    /// across ASIDs collapse onto one way.
    sub_entry_sharing: bool,
    tick: u64,
    pending_count: usize,
    stats: TlbStats,
}

impl Tlb {
    /// Builds a TLB from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see [`TlbConfig`]).
    pub fn new(cfg: TlbConfig) -> Self {
        cfg.validate();
        let sets = vec![vec![Entry::invalid(); cfg.assoc]; cfg.num_sets()];
        let scores = vec![0i8; cfg.num_sets()];
        Self {
            cfg,
            sets,
            scores,
            way_partition: None,
            sub_entry_sharing: false,
            tick: 0,
            pending_count: 0,
            stats: TlbStats::default(),
        }
    }

    /// The TLB's configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Number of entries currently repurposed as In-TLB MSHRs.
    pub fn pending_entries(&self) -> usize {
        self.pending_count
    }

    /// Restricts each ASID's fills and pending reservations to a window
    /// of ways: `partition[asid] = (first_way, ways)`. Lookups and
    /// shootdowns still search the whole set, so the partition only
    /// shapes *capacity*, never correctness. ASIDs beyond the partition
    /// table fall back to the full set.
    ///
    /// # Panics
    ///
    /// Panics if any window is empty or exceeds the associativity.
    pub fn set_way_partition(&mut self, partition: Vec<(usize, usize)>) {
        let ranges: Vec<std::ops::Range<usize>> = partition
            .into_iter()
            .map(|(first, ways)| {
                assert!(ways > 0, "empty way window");
                assert!(
                    first + ways <= self.cfg.assoc,
                    "way window {first}+{ways} exceeds associativity {}",
                    self.cfg.assoc
                );
                first..first + ways
            })
            .collect();
        self.way_partition = Some(ranges);
    }

    /// Enables sub-entry sharing: a fill whose `(vpn, pfn)` pair already
    /// sits valid in the set under another ASID joins that entry's
    /// sharer bitmask instead of consuming a way.
    pub fn set_sub_entry_sharing(&mut self, on: bool) {
        self.sub_entry_sharing = on;
    }

    /// The ways `asid` may claim for fills and pending reservations.
    fn way_window(&self, asid: Asid) -> std::ops::Range<usize> {
        self.way_partition
            .as_ref()
            .and_then(|p| p.get(asid.index()).cloned())
            .unwrap_or(0..self.cfg.assoc)
    }

    fn set_of(&self, vpn: Vpn) -> usize {
        (vpn.value() as usize) & (self.sets.len() - 1)
    }

    /// Looks up a translation, updating statistics and LRU state.
    pub fn lookup(&mut self, asid: Asid, vpn: Vpn) -> Option<Pfn> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(vpn);
        for e in &mut self.sets[set] {
            if e.state == EntryState::Valid && e.serves(asid, vpn) {
                e.last_used = tick;
                if e.prefetched && !e.touched {
                    self.stats.prefetch_hits += 1;
                }
                e.touched = true;
                // A hit disproves the dead-on-arrival prediction.
                e.dead = false;
                self.stats.hits += 1;
                return Some(e.pfn);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Non-destructive probe: no statistics, LRU, or reuse-flag update.
    pub fn probe(&self, asid: Asid, vpn: Vpn) -> Option<Pfn> {
        let set = self.set_of(vpn);
        self.sets[set]
            .iter()
            .find(|e| e.state == EntryState::Valid && e.serves(asid, vpn))
            .map(|e| e.pfn)
    }

    /// Installs a demand translation. Victim preference: an entry already
    /// holding this `(asid, vpn)` tag, then an invalid way, then the
    /// policy victim among *valid* ways (both restricted to the ASID's
    /// way window when a partition is set). Pending ways are never
    /// displaced by ordinary fills; if no way is available the fill is
    /// dropped (the translation was still delivered to its requesters)
    /// and `false` is returned.
    ///
    /// If the set holds a tag-matching *pending* way the fill is also
    /// dropped: that pending walk owns the install for this tag (its
    /// [`Tlb::clear_pending_and_fill`] converts the reserved way), and
    /// installing here would leave two same-tag entries in the set. The
    /// requesters of the racing fill already received their translation,
    /// so dropping loses nothing but a few cycles of caching.
    pub fn fill(&mut self, asid: Asid, vpn: Vpn, pfn: Pfn) -> bool {
        self.fill_inner(asid, vpn, pfn, false)
    }

    /// Installs a prefetched translation: same placement rules as
    /// [`Tlb::fill`], but the entry is tagged so an unused prefetch is
    /// preferentially evicted and its fate (hit vs. wasted) is counted.
    /// A dropped install counts as a prefetch eviction immediately. The
    /// ASID is the *issuing tenant's*: a prefetch can only ever install
    /// into (and later be evicted from) its own tenant's tag space.
    pub fn fill_prefetched(&mut self, asid: Asid, vpn: Vpn, pfn: Pfn) -> bool {
        self.fill_inner(asid, vpn, pfn, true)
    }

    fn fill_inner(&mut self, asid: Asid, vpn: Vpn, pfn: Pfn, prefetched: bool) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(vpn);

        if self.sets[set]
            .iter()
            .any(|e| e.state == EntryState::Pending && e.serves(asid, vpn))
        {
            // Duplicate-tag hazard: an In-TLB-tracked walk for this tag
            // owns the install. Drop the racing fill (see doc above).
            if prefetched {
                self.stats.prefetch_evictions += 1;
            }
            return false;
        }

        if self.sub_entry_sharing {
            if let Some(i) = self.sets[set]
                .iter()
                .position(|e| e.state == EntryState::Valid && e.vpn == vpn && e.pfn == pfn)
            {
                // An identically-mapped entry already sits in the set:
                // join it instead of consuming a way.
                let joined = !self.sets[set][i].serves(asid, vpn);
                let e = &mut self.sets[set][i];
                if e.asid != asid {
                    e.shared |= asid_bit(asid);
                }
                e.last_used = tick;
                self.stats.fills += 1;
                if joined {
                    self.stats.shared_joins += 1;
                }
                return true;
            }
            // A differently-mapped entry may still carry our sharer bit
            // (stale after a remap): detach before installing a private
            // copy, so the set never holds two entries serving this tag.
            self.detach(set, asid, vpn);
        }

        let tag_match = self.sets[set]
            .iter()
            .position(|e| e.state == EntryState::Valid && e.asid == asid && e.vpn == vpn);
        let window = self.way_window(asid);
        let way = if let Some(i) = tag_match {
            // In-place overwrite. If the old copy was an unused prefetch
            // it never got its hit: account it as wasted.
            self.note_departure(set, i, false);
            Some(i)
        } else if let Some(i) = window
            .clone()
            .find(|&i| self.sets[set][i].state == EntryState::Invalid)
        {
            Some(i)
        } else {
            let victim = Self::policy_victim(&self.sets[set], self.cfg.repl, window);
            if let Some(i) = victim {
                self.stats.evictions += 1;
                self.note_departure(set, i, true);
            }
            victim
        };

        match way {
            Some(i) => {
                let dead = self.predict_dead(set);
                self.sets[set][i] = Entry {
                    state: EntryState::Valid,
                    asid,
                    vpn,
                    pfn,
                    last_used: tick,
                    shared: 0,
                    prefetched,
                    touched: false,
                    dead,
                };
                if dead {
                    self.stats.dead_fills += 1;
                }
                self.stats.fills += 1;
                true
            }
            None => {
                if prefetched {
                    self.stats.prefetch_evictions += 1;
                }
                false
            }
        }
    }

    /// Removes `asid`'s claim on any valid entry serving `(asid, vpn)`
    /// without disturbing other sharers: a sharer bit is cleared, an
    /// owner with sharers hands the entry to its lowest sharer. Returns
    /// whether a sole-owner entry was dropped entirely.
    fn detach(&mut self, set: usize, asid: Asid, vpn: Vpn) -> bool {
        for i in 0..self.sets[set].len() {
            let e = &self.sets[set][i];
            if e.state != EntryState::Valid || !e.serves(asid, vpn) {
                continue;
            }
            if e.asid != asid {
                self.sets[set][i].shared &= !asid_bit(asid);
            } else if e.shared != 0 {
                let e = &mut self.sets[set][i];
                let heir = e.shared.trailing_zeros() as u16;
                e.shared &= !(1 << heir);
                e.asid = Asid::new(heir);
            } else {
                self.note_departure(set, i, false);
                self.sets[set][i] = Entry::invalid();
                return true;
            }
            return false;
        }
        false
    }

    /// Reserves a victim entry in `vpn`'s set as an In-TLB MSHR (Figure 13
    /// steps 2-3). Victim preference: a valid way already holding this
    /// exact tag (reusing it keeps the set free of duplicate tags and is
    /// not pollution — no other warp loses its translation), then an
    /// invalid way, then the policy victim among valid ways (evicting its
    /// translation); the latter two restricted to the ASID's way window
    /// when a partition is set. Fails if every candidate way is already
    /// pending — the per-set bottleneck that limits spmv in the paper's
    /// Figure 24 discussion.
    pub fn reserve_pending(&mut self, asid: Asid, vpn: Vpn) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(vpn);

        if self.sub_entry_sharing {
            // A shared entry cannot be converted into a (single-ASID)
            // pending way without robbing the other sharers: detach our
            // claim and reserve a fresh way instead.
            let had_sole_copy = self.detach(set, asid, vpn);
            let _ = had_sole_copy;
        }

        let tag_match = self.sets[set].iter().position(|e| {
            e.state == EntryState::Valid && e.asid == asid && e.vpn == vpn && e.shared == 0
        });
        let window = self.way_window(asid);
        let way = if let Some(i) = tag_match {
            self.note_departure(set, i, false);
            Some(i)
        } else if let Some(i) = window
            .clone()
            .find(|&i| self.sets[set][i].state == EntryState::Invalid)
        {
            Some(i)
        } else {
            let victim = Self::policy_victim(&self.sets[set], self.cfg.repl, window);
            if let Some(i) = victim {
                self.stats.evictions += 1;
                self.note_departure(set, i, true);
            }
            victim
        };

        match way {
            Some(i) => {
                self.sets[set][i] = Entry {
                    state: EntryState::Pending,
                    asid,
                    vpn,
                    pfn: Pfn::new(0),
                    last_used: tick,
                    shared: 0,
                    prefetched: false,
                    touched: false,
                    dead: false,
                };
                self.pending_count += 1;
                true
            }
            None => false,
        }
    }

    /// Picks the way to displace when no invalid way exists. Only valid
    /// ways inside `window` are candidates: pending ways are never
    /// displaced, and a partitioned ASID never evicts outside its window.
    fn policy_victim(
        ways: &[Entry],
        repl: ReplPolicy,
        window: std::ops::Range<usize>,
    ) -> Option<usize> {
        let lru_where = |pred: &dyn Fn(&Entry) -> bool| -> Option<usize> {
            ways.iter()
                .enumerate()
                .filter(|(i, e)| window.contains(i) && e.state == EntryState::Valid && pred(e))
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
        };
        if repl == ReplPolicy::DeadBlock {
            if let Some(i) = lru_where(&|e| e.dead && e.prefetched && !e.touched) {
                return Some(i);
            }
            if let Some(i) = lru_where(&|e| e.dead) {
                return Some(i);
            }
        }
        lru_where(&|_| true)
    }

    /// Bookkeeping for a valid way about to be displaced: wasted-prefetch
    /// accounting always, dead-block training only when the displacement
    /// was a replacement decision (`train`) under DeadBlock.
    fn note_departure(&mut self, set: usize, i: usize, train: bool) {
        let e = &self.sets[set][i];
        if e.state != EntryState::Valid {
            return;
        }
        if e.prefetched && !e.touched {
            self.stats.prefetch_evictions += 1;
        }
        if train && self.cfg.repl == ReplPolicy::DeadBlock {
            let s = &mut self.scores[set];
            if e.touched {
                *s = (*s - 1).max(SCORE_MIN);
            } else {
                *s = (*s + 1).min(SCORE_MAX);
            }
        }
    }

    fn predict_dead(&self, set: usize) -> bool {
        self.cfg.repl == ReplPolicy::DeadBlock && self.scores[set] >= DEAD_THRESHOLD
    }

    /// Whether `vpn`'s set already holds a pending reservation for this
    /// exact tag (tag match — enables In-TLB MSHR merging).
    pub fn has_pending(&self, asid: Asid, vpn: Vpn) -> bool {
        let set = self.set_of(vpn);
        self.sets[set]
            .iter()
            .any(|e| e.state == EntryState::Pending && e.asid == asid && e.vpn == vpn)
    }

    /// Completes an In-TLB-tracked miss (Figure 13 steps 4-6): clears the
    /// pending bit of every tag-matching way and installs the translation
    /// into one of them (or, in sharing mode, onto an identically-mapped
    /// entry of another ASID). Returns the number of pending ways cleared.
    pub fn clear_pending_and_fill(&mut self, asid: Asid, vpn: Vpn, pfn: Pfn) -> usize {
        self.clear_pending_fill_inner(asid, vpn, pfn, false)
    }

    /// [`Tlb::clear_pending_and_fill`] for a prefetch-initiated walk: the
    /// installed translation carries the prefetch tag.
    pub fn clear_pending_and_fill_prefetched(&mut self, asid: Asid, vpn: Vpn, pfn: Pfn) -> usize {
        self.clear_pending_fill_inner(asid, vpn, pfn, true)
    }

    fn clear_pending_fill_inner(
        &mut self,
        asid: Asid,
        vpn: Vpn,
        pfn: Pfn,
        prefetched: bool,
    ) -> usize {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(vpn);
        let dead = self.predict_dead(set);
        let join = self.sub_entry_sharing.then(|| {
            self.sets[set]
                .iter()
                .position(|e| e.state == EntryState::Valid && e.vpn == vpn && e.pfn == pfn)
        });
        let mut cleared = 0;
        let mut filled = false;
        if let Some(Some(i)) = join {
            // The walk's result is already resident under another ASID:
            // join that entry and free every pending way.
            let e = &mut self.sets[set][i];
            if e.asid != asid {
                e.shared |= asid_bit(asid);
            }
            e.last_used = tick;
            for e in &mut self.sets[set] {
                if e.state == EntryState::Pending && e.asid == asid && e.vpn == vpn {
                    *e = Entry::invalid();
                    cleared += 1;
                }
            }
            if cleared > 0 {
                self.stats.fills += 1;
                self.stats.shared_joins += 1;
                filled = true;
            }
        } else {
            for e in &mut self.sets[set] {
                if e.state == EntryState::Pending && e.asid == asid && e.vpn == vpn {
                    cleared += 1;
                    if filled {
                        *e = Entry::invalid();
                    } else {
                        e.state = EntryState::Valid;
                        e.pfn = pfn;
                        e.last_used = tick;
                        e.shared = 0;
                        e.prefetched = prefetched;
                        e.touched = false;
                        e.dead = dead;
                        filled = true;
                        if dead {
                            self.stats.dead_fills += 1;
                        }
                        self.stats.fills += 1;
                    }
                }
            }
        }
        if cleared == 0 && prefetched {
            // The reservation vanished (e.g. flushed) before the prefetch
            // completed: nothing was installed, the prefetch is wasted.
            self.stats.prefetch_evictions += 1;
        }
        let _ = filled;
        self.pending_count -= cleared;
        cleared
    }

    /// Aborts an In-TLB-tracked miss without installing a translation
    /// (page-fault path): every tag-matching pending way is invalidated.
    /// Returns the number of ways cleared.
    pub fn clear_pending(&mut self, asid: Asid, vpn: Vpn) -> usize {
        let set = self.set_of(vpn);
        let mut cleared = 0;
        for e in &mut self.sets[set] {
            if e.state == EntryState::Pending && e.asid == asid && e.vpn == vpn {
                *e = Entry::invalid();
                cleared += 1;
            }
        }
        self.pending_count -= cleared;
        cleared
    }

    /// Invalidates every valid translation for one `(asid, vpn)` tag
    /// (single-page TLB shootdown — the memory manager's eviction path).
    /// Another tenant's identical VPN is untouched by construction: the
    /// tag includes the ASID, and a shared entry merely loses this
    /// tenant's sub-entry claim (the mapping stays valid for its other
    /// sharers). Pending (In-TLB MSHR) ways are left alone: their
    /// in-flight walk will observe the updated page table and complete or
    /// fault on its own. Returns the number of valid claims dropped; a
    /// correct shootdown must leave zero stale copies behind, so every
    /// tag match goes.
    pub fn invalidate(&mut self, asid: Asid, vpn: Vpn) -> usize {
        let set = self.set_of(vpn);
        let mut dropped = 0;
        for i in 0..self.sets[set].len() {
            let e = &self.sets[set][i];
            if e.state != EntryState::Valid || !e.serves(asid, vpn) {
                continue;
            }
            if e.asid != asid {
                // Sub-entry sharer: clear only this tenant's claim.
                self.sets[set][i].shared &= !asid_bit(asid);
            } else if e.shared != 0 {
                // Owner with sharers: hand the entry to its lowest sharer.
                let e = &mut self.sets[set][i];
                let heir = e.shared.trailing_zeros() as u16;
                e.shared &= !(1 << heir);
                e.asid = Asid::new(heir);
            } else {
                self.note_departure(set, i, false);
                self.sets[set][i] = Entry::invalid();
            }
            dropped += 1;
        }
        dropped
    }

    /// Invalidates every claim one ASID holds anywhere in the array —
    /// valid entries, sub-entry shares, *and* its pending reservations —
    /// for tenant teardown. Other tenants' entries (including shared
    /// entries they co-own) survive untouched, as does the dead-block
    /// sampler: the remaining tenants' reuse history is still valid.
    /// Returns the number of valid claims dropped.
    pub fn flush_asid(&mut self, asid: Asid) -> usize {
        let mut dropped = 0;
        for set in 0..self.sets.len() {
            for i in 0..self.sets[set].len() {
                let e = &self.sets[set][i];
                match e.state {
                    EntryState::Valid if e.serves(asid, vpn_of(e)) => {
                        if e.asid != asid {
                            self.sets[set][i].shared &= !asid_bit(asid);
                        } else if e.shared != 0 {
                            let e = &mut self.sets[set][i];
                            let heir = e.shared.trailing_zeros() as u16;
                            e.shared &= !(1 << heir);
                            e.asid = Asid::new(heir);
                        } else {
                            self.note_departure(set, i, false);
                            self.sets[set][i] = Entry::invalid();
                        }
                        dropped += 1;
                    }
                    EntryState::Pending if e.asid == asid => {
                        self.sets[set][i] = Entry::invalid();
                        self.pending_count -= 1;
                    }
                    _ => {}
                }
            }
        }
        dropped
    }

    /// Invalidates every entry (full TLB shootdown). Resets the
    /// dead-block sampler: reuse history does not survive a full flush.
    pub fn flush(&mut self) {
        for set in 0..self.sets.len() {
            for i in 0..self.sets[set].len() {
                self.note_departure(set, i, false);
                self.sets[set][i] = Entry::invalid();
            }
        }
        for s in &mut self.scores {
            *s = 0;
        }
        self.pending_count = 0;
    }

    /// Number of valid translations currently cached (shared entries
    /// count once, regardless of how many ASIDs they serve).
    pub fn valid_entries(&self) -> usize {
        self.sets
            .iter()
            .flatten()
            .filter(|e| e.state == EntryState::Valid)
            .count()
    }

    /// Number of prefetched translations still awaiting their first
    /// demand hit (the resident leg of the prefetch in-flight count).
    pub fn prefetched_resident(&self) -> usize {
        self.sets
            .iter()
            .flatten()
            .filter(|e| e.state == EntryState::Valid && e.prefetched && !e.touched)
            .count()
    }

    /// `(valid, pending)` tag-matching way counts for `(asid, vpn)` — the
    /// observable form of the set-uniqueness invariant: `valid <= 1`, and
    /// `valid` and `pending` never both nonzero (pending ways for one tag
    /// may number more than one: In-TLB MSHR merging).
    pub fn tag_population(&self, asid: Asid, vpn: Vpn) -> (usize, usize) {
        let set = self.set_of(vpn);
        let mut valid = 0;
        let mut pending = 0;
        for e in &self.sets[set] {
            match e.state {
                EntryState::Valid if e.serves(asid, vpn) => valid += 1,
                EntryState::Pending if e.asid == asid && e.vpn == vpn => pending += 1,
                _ => {}
            }
        }
        (valid, pending)
    }
}

/// The VPN of an entry (helper so `flush_asid` can call `serves` with the
/// entry's own VPN — i.e. test only the ASID claim).
fn vpn_of(e: &Entry) -> Vpn {
    e.vpn
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Asid = Asid::ZERO;
    const B: Asid = Asid(1);

    fn tiny() -> Tlb {
        // 2 sets x 2 ways.
        Tlb::new(TlbConfig {
            name: "tiny".into(),
            entries: 4,
            assoc: 2,
            repl: ReplPolicy::Lru,
        })
    }

    fn tiny_dead() -> Tlb {
        Tlb::new(TlbConfig {
            name: "tiny".into(),
            entries: 4,
            assoc: 2,
            repl: ReplPolicy::DeadBlock,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut t = tiny();
        assert_eq!(t.lookup(A, Vpn::new(8)), None);
        t.fill(A, Vpn::new(8), Pfn::new(3));
        assert_eq!(t.lookup(A, Vpn::new(8)), Some(Pfn::new(3)));
        let s = t.stats();
        assert_eq!((s.hits, s.misses, s.fills), (1, 1, 1));
    }

    #[test]
    fn probe_does_not_touch_stats() {
        let mut t = tiny();
        t.fill(A, Vpn::new(1), Pfn::new(1));
        assert_eq!(t.probe(A, Vpn::new(1)), Some(Pfn::new(1)));
        assert_eq!(t.probe(A, Vpn::new(9)), None);
        assert_eq!(t.stats().hits + t.stats().misses, 0);
    }

    #[test]
    fn lru_eviction_in_set() {
        let mut t = tiny();
        // VPNs 0, 2, 4 all map to set 0 (2 sets).
        t.fill(A, Vpn::new(0), Pfn::new(10));
        t.fill(A, Vpn::new(2), Pfn::new(12));
        t.lookup(A, Vpn::new(0)); // refresh 0; 2 is LRU
        t.fill(A, Vpn::new(4), Pfn::new(14));
        assert_eq!(t.probe(A, Vpn::new(0)), Some(Pfn::new(10)));
        assert_eq!(t.probe(A, Vpn::new(2)), None, "LRU way evicted");
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn refill_same_vpn_updates_in_place() {
        let mut t = tiny();
        t.fill(A, Vpn::new(6), Pfn::new(1));
        t.fill(A, Vpn::new(6), Pfn::new(2));
        assert_eq!(t.probe(A, Vpn::new(6)), Some(Pfn::new(2)));
        assert_eq!(t.valid_entries(), 1);
        assert_eq!(t.stats().evictions, 0);
    }

    #[test]
    fn pending_reservation_survives_fills() {
        let mut t = tiny();
        assert!(t.reserve_pending(A, Vpn::new(0)));
        assert!(t.has_pending(A, Vpn::new(0)));
        assert_eq!(t.pending_entries(), 1);
        // Fill two other lines into set 0 — only one non-pending way left,
        // so the second fill evicts the first; the pending way is untouched.
        t.fill(A, Vpn::new(2), Pfn::new(1));
        t.fill(A, Vpn::new(4), Pfn::new(2));
        assert!(t.has_pending(A, Vpn::new(0)));
        assert_eq!(t.probe(A, Vpn::new(4)), Some(Pfn::new(2)));
        assert_eq!(t.probe(A, Vpn::new(2)), None);
    }

    #[test]
    fn fill_fails_when_all_ways_pending() {
        let mut t = tiny();
        assert!(t.reserve_pending(A, Vpn::new(0)));
        assert!(t.reserve_pending(A, Vpn::new(2)));
        assert!(!t.fill(A, Vpn::new(4), Pfn::new(9)), "no way available");
        assert!(!t.reserve_pending(A, Vpn::new(6)), "set exhausted");
    }

    #[test]
    fn pending_lookup_is_a_miss() {
        let mut t = tiny();
        t.reserve_pending(A, Vpn::new(0));
        assert_eq!(t.lookup(A, Vpn::new(0)), None, "pending entries do not hit");
    }

    #[test]
    fn clear_pending_resolves_all_matching_ways() {
        let mut t = tiny();
        assert!(t.reserve_pending(A, Vpn::new(0)));
        assert!(
            t.reserve_pending(A, Vpn::new(0)),
            "tag-matching merge allowed"
        );
        assert_eq!(t.pending_entries(), 2);
        let cleared = t.clear_pending_and_fill(A, Vpn::new(0), Pfn::new(77));
        assert_eq!(cleared, 2);
        assert_eq!(t.pending_entries(), 0);
        assert_eq!(t.probe(A, Vpn::new(0)), Some(Pfn::new(77)));
        // Exactly one way holds the translation; the other was freed.
        assert_eq!(t.valid_entries(), 1);
    }

    #[test]
    fn reserving_evicts_valid_translation() {
        let mut t = tiny();
        t.fill(A, Vpn::new(0), Pfn::new(1));
        t.fill(A, Vpn::new(2), Pfn::new(2));
        assert!(t.reserve_pending(A, Vpn::new(4)));
        assert_eq!(t.stats().evictions, 1, "pollution is real");
        assert_eq!(t.valid_entries(), 1);
    }

    #[test]
    fn fill_drops_on_tag_matching_pending_way() {
        let mut t = tiny();
        assert!(t.reserve_pending(A, Vpn::new(0)));
        // A racing demand fill for the same tag must not install a second
        // entry next to the pending way: the pending walk owns the
        // install.
        assert!(!t.fill(A, Vpn::new(0), Pfn::new(7)), "racing fill dropped");
        assert_eq!(t.probe(A, Vpn::new(0)), None);
        assert!(t.has_pending(A, Vpn::new(0)));
        assert_eq!(t.tag_population(A, Vpn::new(0)), (0, 1));
        // The pending walk later installs exactly one copy.
        assert_eq!(t.clear_pending_and_fill(A, Vpn::new(0), Pfn::new(7)), 1);
        assert_eq!(t.tag_population(A, Vpn::new(0)), (1, 0));
        assert_eq!(t.probe(A, Vpn::new(0)), Some(Pfn::new(7)));
    }

    #[test]
    fn reserve_prefers_its_own_valid_way() {
        let mut t = tiny();
        t.fill(A, Vpn::new(0), Pfn::new(1));
        t.fill(A, Vpn::new(2), Pfn::new(2));
        assert!(t.reserve_pending(A, Vpn::new(0)));
        assert_eq!(t.stats().evictions, 0, "own way is not pollution");
        assert_eq!(
            t.probe(A, Vpn::new(2)),
            Some(Pfn::new(2)),
            "neighbour lives"
        );
        assert_eq!(t.tag_population(A, Vpn::new(0)), (0, 1));
        assert_eq!(t.clear_pending_and_fill(A, Vpn::new(0), Pfn::new(9)), 1);
        assert_eq!(t.tag_population(A, Vpn::new(0)), (1, 0));
    }

    #[test]
    fn invalidate_targets_one_vpn_and_spares_pending() {
        let mut t = tiny();
        // Even VPNs share set 0; the pending way goes to set 1 so the
        // reservation does not evict a valid entry first.
        t.fill(A, Vpn::new(0), Pfn::new(1));
        t.fill(A, Vpn::new(2), Pfn::new(2));
        t.reserve_pending(A, Vpn::new(5));
        assert_eq!(t.invalidate(A, Vpn::new(0)), 1);
        assert_eq!(t.invalidate(A, Vpn::new(0)), 0, "already gone");
        assert_eq!(t.invalidate(A, Vpn::new(5)), 0, "pending ways are spared");
        assert_eq!(t.probe(A, Vpn::new(0)), None);
        assert_eq!(t.probe(A, Vpn::new(2)), Some(Pfn::new(2)));
        assert_eq!(t.pending_entries(), 1);
        assert_eq!(t.stats().evictions, 0, "shootdown is not an eviction");
    }

    #[test]
    fn flush_clears_everything() {
        let mut t = tiny();
        t.fill(A, Vpn::new(0), Pfn::new(1));
        t.reserve_pending(A, Vpn::new(2));
        t.flush();
        assert_eq!(t.valid_entries(), 0);
        assert_eq!(t.pending_entries(), 0);
    }

    #[test]
    fn hit_rate() {
        let mut t = tiny();
        t.fill(A, Vpn::new(0), Pfn::new(1));
        t.lookup(A, Vpn::new(0));
        t.lookup(A, Vpn::new(2));
        assert!((t.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dead_block_predictor_learns_from_zero_reuse() {
        let mut t = tiny_dead();
        // A never-reused fill stream through set 0: every eviction of an
        // untouched victim raises the set's death score until new fills
        // arrive predicted dead.
        for i in 0..8 {
            t.fill(A, Vpn::new(2 * i), Pfn::new(i));
        }
        assert!(t.stats().dead_fills > 0, "predictor must engage");
        // Under Lru the same stream never marks a fill dead.
        let mut l = tiny();
        for i in 0..8 {
            l.fill(A, Vpn::new(2 * i), Pfn::new(i));
        }
        assert_eq!(l.stats().dead_fills, 0);
    }

    #[test]
    fn dead_entries_are_evicted_before_live_ones() {
        let mut t = tiny_dead();
        // Train: vpn0/vpn2 fill the ways, vpn4/vpn6 evict them untouched
        // (score reaches 2, so vpn6 installs predicted-dead).
        for i in 0..4 {
            t.fill(A, Vpn::new(2 * i), Pfn::new(i));
        }
        assert_eq!(t.probe(A, Vpn::new(4)), Some(Pfn::new(2)));
        assert_eq!(t.probe(A, Vpn::new(6)), Some(Pfn::new(3)));
        // vpn4 (older, not predicted dead) would be the LRU victim, but
        // DeadBlock sacrifices the predicted-dead vpn6 instead.
        t.fill(A, Vpn::new(8), Pfn::new(9));
        assert_eq!(t.probe(A, Vpn::new(4)), Some(Pfn::new(2)), "live protected");
        assert_eq!(t.probe(A, Vpn::new(6)), None, "dead evicted first");
    }

    #[test]
    fn touched_victims_cool_the_predictor() {
        let mut t = tiny_dead();
        // Every victim is touched before eviction: the score only falls,
        // so no fill is ever predicted dead.
        for i in 0..8 {
            t.fill(A, Vpn::new(2 * i), Pfn::new(i));
            t.lookup(A, Vpn::new(2 * i));
        }
        assert_eq!(t.stats().dead_fills, 0);
    }

    #[test]
    fn prefetch_tagging_counts_hits_and_evictions() {
        let mut t = tiny();
        t.fill_prefetched(A, Vpn::new(0), Pfn::new(1));
        t.fill_prefetched(A, Vpn::new(2), Pfn::new(2));
        assert_eq!(t.prefetched_resident(), 2);
        assert_eq!(t.lookup(A, Vpn::new(0)), Some(Pfn::new(1)));
        assert_eq!(t.stats().prefetch_hits, 1);
        assert_eq!(t.prefetched_resident(), 1);
        t.lookup(A, Vpn::new(0));
        assert_eq!(t.stats().prefetch_hits, 1, "useful counted once");
        // vpn2 is LRU and still untouched: evicting it wastes the prefetch.
        t.fill(A, Vpn::new(4), Pfn::new(3));
        assert_eq!(t.stats().prefetch_evictions, 1);
        assert_eq!(t.prefetched_resident(), 0);
    }

    #[test]
    fn prefetched_dead_entries_are_first_victims() {
        let mut t = tiny_dead();
        for i in 0..4 {
            t.fill(A, Vpn::new(2 * i), Pfn::new(i));
        }
        // Score is 2: the prefetch installs predicted-dead (evicting the
        // dead vpn6), then the next demand fill sacrifices the unused
        // prefetch before any demand entry.
        t.fill_prefetched(A, Vpn::new(8), Pfn::new(9));
        assert_eq!(t.probe(A, Vpn::new(8)), Some(Pfn::new(9)));
        t.fill(A, Vpn::new(10), Pfn::new(11));
        assert_eq!(t.probe(A, Vpn::new(8)), None, "unused prefetch went first");
        assert_eq!(
            t.probe(A, Vpn::new(4)),
            Some(Pfn::new(2)),
            "demand survives"
        );
        assert_eq!(t.stats().prefetch_evictions, 1);
    }

    #[test]
    fn invalidate_counts_wasted_prefetches() {
        let mut t = tiny();
        t.fill_prefetched(A, Vpn::new(0), Pfn::new(1));
        assert_eq!(t.invalidate(A, Vpn::new(0)), 1);
        assert_eq!(t.stats().prefetch_evictions, 1);
        // A touched prefetch already counted as useful: not wasted.
        t.fill_prefetched(A, Vpn::new(2), Pfn::new(2));
        t.lookup(A, Vpn::new(2));
        assert_eq!(t.invalidate(A, Vpn::new(2)), 1);
        assert_eq!(t.stats().prefetch_evictions, 1);
        assert_eq!(t.stats().prefetch_hits, 1);
    }

    #[test]
    fn asids_are_distinct_tags() {
        let mut t = tiny();
        t.fill(A, Vpn::new(0), Pfn::new(10));
        t.fill(B, Vpn::new(0), Pfn::new(20));
        // Same VPN, two tenants, two ways, two different translations.
        assert_eq!(t.lookup(A, Vpn::new(0)), Some(Pfn::new(10)));
        assert_eq!(t.lookup(B, Vpn::new(0)), Some(Pfn::new(20)));
        assert_eq!(t.valid_entries(), 2);
    }

    #[test]
    fn invalidate_is_asid_scoped() {
        let mut t = tiny();
        t.fill(A, Vpn::new(0), Pfn::new(10));
        t.fill(B, Vpn::new(0), Pfn::new(20));
        assert_eq!(t.invalidate(A, Vpn::new(0)), 1);
        assert_eq!(t.probe(A, Vpn::new(0)), None, "A's copy gone");
        assert_eq!(t.probe(B, Vpn::new(0)), Some(Pfn::new(20)), "B untouched");
    }

    #[test]
    fn flush_asid_drops_only_one_tenant() {
        let mut t = tiny();
        // Set 0: A and B each hold a valid way. Set 1: one pending
        // reservation per tenant.
        t.fill(A, Vpn::new(0), Pfn::new(10));
        t.fill(B, Vpn::new(2), Pfn::new(22));
        t.reserve_pending(A, Vpn::new(3));
        t.reserve_pending(B, Vpn::new(5));
        assert_eq!(t.flush_asid(A), 1);
        assert_eq!(t.probe(A, Vpn::new(0)), None);
        assert!(!t.has_pending(A, Vpn::new(3)), "A's reservation torn down");
        assert_eq!(t.probe(B, Vpn::new(2)), Some(Pfn::new(22)));
        assert!(t.has_pending(B, Vpn::new(5)), "B's reservation survives");
        assert_eq!(t.pending_entries(), 1);
    }

    #[test]
    fn pending_merge_requires_matching_asid() {
        let mut t = tiny();
        assert!(t.reserve_pending(A, Vpn::new(0)));
        assert!(!t.has_pending(B, Vpn::new(0)), "other tenant sees no merge");
        // B's racing fill for the same VPN is *not* dropped by A's
        // pending way: the tags differ.
        assert!(t.fill(B, Vpn::new(0), Pfn::new(7)));
        assert_eq!(t.probe(B, Vpn::new(0)), Some(Pfn::new(7)));
        assert_eq!(t.tag_population(A, Vpn::new(0)), (0, 1));
        assert_eq!(t.tag_population(B, Vpn::new(0)), (1, 0));
    }

    #[test]
    fn prefetch_installs_only_into_issuing_tenants_tag_space() {
        let mut t = tiny();
        t.fill_prefetched(B, Vpn::new(0), Pfn::new(9));
        assert_eq!(t.probe(A, Vpn::new(0)), None, "A never sees B's prefetch");
        assert_eq!(t.probe(B, Vpn::new(0)), Some(Pfn::new(9)));
        // And A invalidating its (nonexistent) copy leaves B's intact.
        assert_eq!(t.invalidate(A, Vpn::new(0)), 0);
        assert_eq!(t.probe(B, Vpn::new(0)), Some(Pfn::new(9)));
    }

    #[test]
    fn way_partition_confines_evictions() {
        let mut t = tiny();
        // Way 0 belongs to tenant A, way 1 to tenant B (in every set).
        t.set_way_partition(vec![(0, 1), (1, 1)]);
        t.fill(A, Vpn::new(0), Pfn::new(1));
        t.fill(B, Vpn::new(2), Pfn::new(2));
        // A second fill from A must evict A's own entry, never B's.
        t.fill(A, Vpn::new(4), Pfn::new(3));
        assert_eq!(t.probe(A, Vpn::new(0)), None, "A evicted its own way");
        assert_eq!(t.probe(A, Vpn::new(4)), Some(Pfn::new(3)));
        assert_eq!(t.probe(B, Vpn::new(2)), Some(Pfn::new(2)), "B untouched");
        assert_eq!(t.valid_entries(), 2);
    }

    #[test]
    fn sub_entry_sharing_joins_identical_mappings() {
        let mut t = tiny();
        t.set_sub_entry_sharing(true);
        t.fill(A, Vpn::new(0), Pfn::new(10));
        assert!(t.fill(B, Vpn::new(0), Pfn::new(10)), "join absorbed");
        assert_eq!(t.valid_entries(), 1, "one way serves both tenants");
        assert_eq!(t.stats().shared_joins, 1);
        assert_eq!(t.lookup(A, Vpn::new(0)), Some(Pfn::new(10)));
        assert_eq!(t.lookup(B, Vpn::new(0)), Some(Pfn::new(10)));
        // Invalidating one tenant's claim leaves the other's.
        assert_eq!(t.invalidate(A, Vpn::new(0)), 1);
        assert_eq!(t.probe(A, Vpn::new(0)), None);
        assert_eq!(t.probe(B, Vpn::new(0)), Some(Pfn::new(10)));
        assert_eq!(t.valid_entries(), 1);
    }

    #[test]
    fn sub_entry_sharing_keeps_different_mappings_apart() {
        let mut t = tiny();
        t.set_sub_entry_sharing(true);
        t.fill(A, Vpn::new(0), Pfn::new(10));
        t.fill(B, Vpn::new(0), Pfn::new(20));
        assert_eq!(t.valid_entries(), 2, "different PFNs never merge");
        assert_eq!(t.stats().shared_joins, 0);
        assert_eq!(t.lookup(A, Vpn::new(0)), Some(Pfn::new(10)));
        assert_eq!(t.lookup(B, Vpn::new(0)), Some(Pfn::new(20)));
    }

    #[test]
    fn flush_asid_respects_shared_entries() {
        let mut t = tiny();
        t.set_sub_entry_sharing(true);
        t.fill(A, Vpn::new(0), Pfn::new(10));
        t.fill(B, Vpn::new(0), Pfn::new(10));
        assert_eq!(t.flush_asid(A), 1);
        assert_eq!(t.probe(B, Vpn::new(0)), Some(Pfn::new(10)), "B keeps it");
        assert_eq!(t.valid_entries(), 1);
        assert_eq!(t.flush_asid(B), 1);
        assert_eq!(t.valid_entries(), 0);
    }
}
