//! TLB hierarchy for the SoftWalker GPU model.
//!
//! * [`Tlb`] — a set-associative (or fully-associative) translation
//!   lookaside buffer with LRU replacement and three-state entries
//!   (invalid / valid / pending), the substrate for both the per-SM L1 TLB
//!   and the shared L2 TLB of Table 3.
//! * [`TlbMshr`] — a bounded miss-status-holding-register file with a merge
//!   limit per entry, generic over the waiter metadata it parks.
//! * [`L2TlbComplex`] — the shared L2 TLB plus its MSHR file plus the
//!   paper's **In-TLB MSHR** mechanism: when the 128 dedicated MSHRs are
//!   full, victim TLB entries are repurposed (pending bit set) to track
//!   outstanding misses, expanding in-flight capacity to 1024+ at the cost
//!   of evicting cached translations.
//!
//! Timing (10-cycle L1, 80-cycle L2 lookups) is applied by the simulator's
//! queues; these types are the combinational state machines plus
//! statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod l2;
mod mshr;
mod tlb;

pub use l2::{InTlbStats, L2MissOutcome, L2TlbComplex};
pub use mshr::{MshrOutcome, TlbMshr, TlbMshrConfig, TlbMshrStats};
pub use tlb::{ReplPolicy, Tlb, TlbConfig, TlbStats};
