//! TLB miss status holding registers.

use std::collections::HashMap;
use swgpu_types::{Asid, Vpn};

/// Sizing of one MSHR file. Table 3: the L1 TLB has 32 entries with 192
/// merges per entry; the L2 TLB has 128 entries with 46 merges per entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbMshrConfig {
    /// Distinct in-flight VPNs that can be tracked.
    pub entries: usize,
    /// Maximum waiters merged per entry (including the first).
    pub max_merges: usize,
}

impl TlbMshrConfig {
    /// Table 3 L1 TLB MSHR file.
    pub fn l1() -> Self {
        Self {
            entries: 32,
            max_merges: 192,
        }
    }

    /// Table 3 L2 TLB MSHR file.
    pub fn l2() -> Self {
        Self {
            entries: 128,
            max_merges: 46,
        }
    }
}

/// Result of presenting a miss to [`TlbMshr::allocate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the caller must launch a page walk (or
    /// forward the miss to the next level).
    Allocated,
    /// The VPN was already in flight; the waiter was merged and no new
    /// walk is needed.
    Merged,
    /// The file is saturated (entries exhausted, or this VPN's merge list
    /// is full). The paper calls this an *MSHR failure*.
    Full,
}

/// Statistics for one MSHR file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbMshrStats {
    /// New entries allocated.
    pub allocations: u64,
    /// Waiters merged into existing entries.
    pub merges: u64,
    /// Rejected misses (MSHR failures).
    pub failures: u64,
}

/// A bounded MSHR file, generic over the waiter metadata `M` it parks
/// (which SM/warp/instruction is waiting on each VPN). Entries are keyed
/// by the full `(Asid, Vpn)` tag: two tenants missing on the same VPN
/// track two independent walks and never merge into each other.
///
/// # Example
///
/// ```
/// use swgpu_tlb::{MshrOutcome, TlbMshr, TlbMshrConfig};
/// use swgpu_types::{Asid, Vpn};
///
/// let mut m: TlbMshr<&str> = TlbMshr::new(TlbMshrConfig { entries: 1, max_merges: 2 });
/// assert_eq!(m.allocate(Asid::ZERO, Vpn::new(1), "a"), MshrOutcome::Allocated);
/// assert_eq!(m.allocate(Asid::ZERO, Vpn::new(1), "b"), MshrOutcome::Merged);
/// assert_eq!(m.allocate(Asid::ZERO, Vpn::new(1), "c"), MshrOutcome::Full);
/// assert_eq!(m.allocate(Asid::ZERO, Vpn::new(2), "d"), MshrOutcome::Full);
/// assert_eq!(m.resolve(Asid::ZERO, Vpn::new(1)), vec!["a", "b"]);
/// ```
#[derive(Debug)]
pub struct TlbMshr<M> {
    cfg: TlbMshrConfig,
    inflight: HashMap<(Asid, Vpn), Vec<M>>,
    stats: TlbMshrStats,
}

impl<M> TlbMshr<M> {
    /// Creates an empty MSHR file.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero entries or a zero merge limit.
    pub fn new(cfg: TlbMshrConfig) -> Self {
        assert!(cfg.entries > 0, "MSHR file needs at least one entry");
        assert!(cfg.max_merges > 0, "merge limit must be positive");
        Self {
            cfg,
            inflight: HashMap::new(),
            stats: TlbMshrStats::default(),
        }
    }

    /// The file's configuration.
    pub fn config(&self) -> TlbMshrConfig {
        self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbMshrStats {
        self.stats
    }

    /// Presents a miss for `(asid, vpn)` with waiter metadata `meta`.
    pub fn allocate(&mut self, asid: Asid, vpn: Vpn, meta: M) -> MshrOutcome {
        if let Some(waiters) = self.inflight.get_mut(&(asid, vpn)) {
            if waiters.len() < self.cfg.max_merges {
                waiters.push(meta);
                self.stats.merges += 1;
                MshrOutcome::Merged
            } else {
                self.stats.failures += 1;
                MshrOutcome::Full
            }
        } else if self.inflight.len() < self.cfg.entries {
            self.inflight.insert((asid, vpn), vec![meta]);
            self.stats.allocations += 1;
            MshrOutcome::Allocated
        } else {
            self.stats.failures += 1;
            MshrOutcome::Full
        }
    }

    /// Whether `(asid, vpn)` is currently tracked.
    pub fn contains(&self, asid: Asid, vpn: Vpn) -> bool {
        self.inflight.contains_key(&(asid, vpn))
    }

    /// Completes a miss, releasing every merged waiter in arrival order.
    /// Returns an empty vector if the tag was not tracked (already
    /// resolved, or tracked by the In-TLB overflow path instead).
    pub fn resolve(&mut self, asid: Asid, vpn: Vpn) -> Vec<M> {
        self.inflight.remove(&(asid, vpn)).unwrap_or_default()
    }

    /// Number of distinct `(asid, vpn)` tags in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Whether the file has no free entries.
    pub fn is_full(&self) -> bool {
        self.inflight.len() >= self.cfg.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Asid = Asid::ZERO;
    const B: Asid = Asid(1);

    #[test]
    fn allocate_merge_full_lifecycle() {
        let mut m: TlbMshr<u32> = TlbMshr::new(TlbMshrConfig {
            entries: 2,
            max_merges: 2,
        });
        assert_eq!(m.allocate(A, Vpn::new(1), 10), MshrOutcome::Allocated);
        assert_eq!(m.allocate(A, Vpn::new(1), 11), MshrOutcome::Merged);
        assert_eq!(m.allocate(A, Vpn::new(1), 12), MshrOutcome::Full);
        assert_eq!(m.allocate(A, Vpn::new(2), 20), MshrOutcome::Allocated);
        assert!(m.is_full());
        assert_eq!(m.allocate(A, Vpn::new(3), 30), MshrOutcome::Full);
        let s = m.stats();
        assert_eq!((s.allocations, s.merges, s.failures), (2, 1, 2));
    }

    #[test]
    fn resolve_releases_in_arrival_order() {
        let mut m: TlbMshr<u32> = TlbMshr::new(TlbMshrConfig {
            entries: 4,
            max_merges: 8,
        });
        m.allocate(A, Vpn::new(5), 1);
        m.allocate(A, Vpn::new(5), 2);
        m.allocate(A, Vpn::new(5), 3);
        assert_eq!(m.resolve(A, Vpn::new(5)), vec![1, 2, 3]);
        assert!(!m.contains(A, Vpn::new(5)));
        assert_eq!(m.resolve(A, Vpn::new(5)), Vec::<u32>::new());
    }

    #[test]
    fn freed_entry_is_reusable() {
        let mut m: TlbMshr<()> = TlbMshr::new(TlbMshrConfig {
            entries: 1,
            max_merges: 1,
        });
        assert_eq!(m.allocate(A, Vpn::new(1), ()), MshrOutcome::Allocated);
        m.resolve(A, Vpn::new(1));
        assert_eq!(m.allocate(A, Vpn::new(2), ()), MshrOutcome::Allocated);
    }

    #[test]
    fn same_vpn_different_asids_never_merge() {
        let mut m: TlbMshr<u32> = TlbMshr::new(TlbMshrConfig {
            entries: 4,
            max_merges: 8,
        });
        assert_eq!(m.allocate(A, Vpn::new(7), 1), MshrOutcome::Allocated);
        assert_eq!(
            m.allocate(B, Vpn::new(7), 2),
            MshrOutcome::Allocated,
            "distinct tag, distinct walk"
        );
        assert_eq!(m.in_flight(), 2);
        assert_eq!(m.resolve(A, Vpn::new(7)), vec![1]);
        assert!(m.contains(B, Vpn::new(7)), "B's walk survives A's resolve");
        assert_eq!(m.resolve(B, Vpn::new(7)), vec![2]);
    }
}
