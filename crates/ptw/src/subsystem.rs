//! The PWB + PTW pool state machine.

use crate::request::{TableRef, WalkCompletion, WalkContext, WalkRequest, WalkResult};
use std::collections::{HashMap, VecDeque};
use swgpu_mem::{AccessKind, MemReq};
use swgpu_pt::{read_pte_observed, RadixPageTable, LEAF_LEVEL};
use swgpu_types::fault::site;
use swgpu_types::{
    Cycle, DelayQueue, FaultInjectionStats, FaultInjector, FaultPlan, IdGen, MemReqId, PhysAddr,
    Pte, PteReadEvent,
};

/// How pending walks are picked from the PWB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PwbPolicy {
    /// First-come first-served (the conventional baseline).
    Fifo,
    /// The page-walk-scheduling baseline of Shin et al. \[85\] (Table 1):
    /// prefer the pending walk whose originating warp has the *fewest*
    /// walks still outstanding in the subsystem. Finishing nearly-done
    /// warps first shrinks the gap between a warp's first and last
    /// completed walk, releasing stalled warps sooner. Requests without
    /// an owner fall back to FIFO order.
    WarpShortestFirst,
}

/// How a walker's per-level reads are timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkTiming {
    /// Each level is a real memory read through the L2D/DRAM hierarchy
    /// (the paper's default: latency is "dynamically measured by the
    /// memory system model").
    Memory,
    /// Each level costs a fixed number of cycles — the knob behind the
    /// Figure 23 sensitivity study (50–400 cycles per level).
    FixedPerLevel(u64),
}

/// Configuration of the hardware walk subsystem.
#[derive(Debug, Clone)]
pub struct PtwConfig {
    /// Concurrent walks the pool supports (32 in the baseline; use
    /// [`usize::MAX`] for the ideal configuration).
    pub walkers: usize,
    /// Page Walk Buffer capacity. The paper scales this alongside the
    /// walker count; the baseline matches the 128 L2 TLB MSHRs.
    pub pwb_entries: usize,
    /// Walks that can be dequeued from the PWB per cycle (PWB ports,
    /// the x-axis annotation of Figure 15).
    pub pwb_ports: usize,
    /// Enable Neighborhood-Aware coalescing \[86\]: requests whose leaf
    /// PTEs share one page-table sector ride a single walk.
    pub nha: bool,
    /// Sector granularity for NHA merging (32 B = 4 PTEs, matching the
    /// paper's "32B sector" evaluation of NHA).
    pub sector_bytes: u64,
    /// Per-level timing model.
    pub timing: WalkTiming,
    /// PWB dequeue policy.
    pub pwb_policy: PwbPolicy,
}

impl Default for PtwConfig {
    fn default() -> Self {
        Self {
            walkers: 32,
            pwb_entries: 128,
            pwb_ports: 1,
            nha: false,
            sector_bytes: 32,
            timing: WalkTiming::Memory,
            pwb_policy: PwbPolicy::Fifo,
        }
    }
}

impl PtwConfig {
    /// The unbounded "ideal PTWs" configuration of Figures 5/16.
    pub fn ideal() -> Self {
        Self {
            walkers: usize::MAX,
            pwb_entries: usize::MAX,
            pwb_ports: usize::MAX,
            ..Self::default()
        }
    }

    fn validate(&self) {
        assert!(self.walkers > 0, "need at least one walker");
        assert!(self.pwb_entries > 0, "PWB needs at least one entry");
        assert!(self.pwb_ports > 0, "PWB needs at least one port");
        assert!(
            self.sector_bytes.is_power_of_two() && self.sector_bytes >= Pte::SIZE_BYTES,
            "sector must be a power of two holding at least one PTE"
        );
    }
}

/// Cumulative walk statistics — the raw material for Figures 7 and 18.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalkStats {
    /// Walks completed (one per walker occupancy).
    pub walks_completed: u64,
    /// Translations delivered (> walks when NHA coalesces).
    pub translations_completed: u64,
    /// Translations that faulted (invalid PTE).
    pub faults: u64,
    /// Σ (walk start − request issue) over all translations: queueing.
    pub total_queue_cycles: u64,
    /// Σ (walk completion − walk start) over all translations: page table
    /// access latency.
    pub total_access_cycles: u64,
    /// Requests rejected because the PWB was full.
    pub pwb_rejections: u64,
    /// Requests absorbed into an existing walk by NHA.
    pub nha_merges: u64,
    /// Memory reads issued on behalf of walks.
    pub memory_reads: u64,
    /// High-water mark of concurrently active walks.
    pub max_active: u64,
}

impl WalkStats {
    /// Mean queueing delay per translation.
    pub fn avg_queue_delay(&self) -> f64 {
        if self.translations_completed == 0 {
            0.0
        } else {
            self.total_queue_cycles as f64 / self.translations_completed as f64
        }
    }

    /// Mean page-table access latency per translation.
    pub fn avg_access_latency(&self) -> f64 {
        if self.translations_completed == 0 {
            0.0
        } else {
            self.total_access_cycles as f64 / self.translations_completed as f64
        }
    }

    /// Mean total walk latency per translation (queueing + access) —
    /// the stacked bars of Figures 7/18.
    pub fn avg_walk_latency(&self) -> f64 {
        self.avg_queue_delay() + self.avg_access_latency()
    }
}

#[derive(Debug)]
struct PendingWalk {
    reqs: Vec<WalkRequest>,
}

#[derive(Debug)]
enum Engine {
    Radix {
        level: u8,
        node: PhysAddr,
    },
    Hashed {
        probe_idx: usize,
        addrs: Vec<PhysAddr>,
    },
}

#[derive(Debug)]
struct ActiveWalk {
    reqs: Vec<WalkRequest>,
    started_at: Cycle,
    engine: Engine,
    /// Bounded-backoff retries consumed so far (watchdog re-issues and
    /// corrupted-read retries both count).
    retries: u32,
    /// Injected faults attributed to this walk and not yet resolved;
    /// credited to `recovered_injections` on completion or to
    /// `escalated_injections` on escalation.
    pending_inj: u64,
    /// Generation counter: bumped whenever the walk makes progress so
    /// stale watchdog deadlines are ignored.
    gen: u64,
    /// Outstanding memory read, if any (cancelled on watchdog timeout).
    wait_id: Option<MemReqId>,
}

/// Fault-injection + recovery state, present only when a nonzero-rate
/// [`FaultPlan`] is armed. When absent, every fault-path branch in the
/// subsystem is skipped and behavior is bit-identical to the baseline.
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    inj: FaultInjector,
    stats: FaultInjectionStats,
    /// Pending watchdog deadlines: `(walk_id, gen)`, stale if the walk's
    /// generation moved on.
    watchdog: DelayQueue<(u64, u64)>,
    /// Backoff-delayed retries of corrupted reads: `(walk_id, gen)`.
    retry_wake: DelayQueue<(u64, u64)>,
}

/// The hardware page-walk subsystem: a PWB feeding a pool of walkers.
///
/// Driven by the owner once per cycle:
///
/// 1. [`PtwSubsystem::enqueue`] new walk requests (checking for rejection).
/// 2. [`PtwSubsystem::tick`] to start walks on idle walkers.
/// 3. [`PtwSubsystem::pop_mem_request`] → route to the L2D cache.
/// 4. On each memory completion, [`PtwSubsystem::on_mem_response`].
/// 5. [`PtwSubsystem::pop_completion`] → resolve L2 TLB MSHRs.
#[derive(Debug)]
pub struct PtwSubsystem {
    cfg: PtwConfig,
    pwb: VecDeque<PendingWalk>,
    // Outstanding walks per originating warp (pending + active), for the
    // warp-aware scheduling policy.
    owner_counts: HashMap<(swgpu_types::SmId, swgpu_types::WarpId), usize>,
    active: HashMap<u64, ActiveWalk>,
    next_walk_id: u64,
    mem_out: VecDeque<MemReq>,
    mem_wait: HashMap<MemReqId, u64>,
    fixed_wake: DelayQueue<u64>,
    completions: VecDeque<WalkCompletion>,
    stats: WalkStats,
    fault: Option<FaultState>,
    // Observation: when armed, every decoded PTE level is buffered here
    // for the owning simulator to drain into its span recorder. Disarmed
    // (the default) the buffer stays empty and untouched.
    observed: bool,
    obs_events: Vec<PteReadEvent>,
}

impl PtwSubsystem {
    /// Builds the subsystem.
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent configuration (zero walkers/entries/ports).
    pub fn new(cfg: PtwConfig) -> Self {
        cfg.validate();
        Self {
            cfg,
            pwb: VecDeque::new(),
            owner_counts: HashMap::new(),
            active: HashMap::new(),
            next_walk_id: 0,
            mem_out: VecDeque::new(),
            mem_wait: HashMap::new(),
            fixed_wake: DelayQueue::new(),
            completions: VecDeque::new(),
            stats: WalkStats::default(),
            fault: None,
            observed: false,
            obs_events: Vec::new(),
        }
    }

    /// Arms or disarms per-level PTE-read observation. Observation is
    /// pure bookkeeping: it never changes walk timing or results.
    pub fn set_observed(&mut self, on: bool) {
        self.observed = on;
    }

    /// Drains the buffered [`PteReadEvent`]s (empty unless observed).
    pub fn drain_obs_events(&mut self) -> Vec<PteReadEvent> {
        std::mem::take(&mut self.obs_events)
    }

    /// Arms fault injection + recovery per `plan`. A disabled plan (all
    /// rates zero) leaves the subsystem in its inert baseline state.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        if plan.enabled() {
            self.fault = Some(FaultState {
                inj: FaultInjector::new(plan.seed, site::PTW_PTE),
                plan: plan.clone(),
                stats: FaultInjectionStats::default(),
                watchdog: DelayQueue::new(),
                retry_wake: DelayQueue::new(),
            });
        }
    }

    /// Counters for faults injected at / recovered by this subsystem.
    pub fn fault_stats(&self) -> FaultInjectionStats {
        self.fault
            .as_ref()
            .map(|f| {
                let mut s = f.stats;
                s.merge(&f.inj.stats);
                s
            })
            .unwrap_or_default()
    }

    /// The subsystem's configuration.
    pub fn config(&self) -> &PtwConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> WalkStats {
        self.stats
    }

    /// Walks currently buffered in the PWB.
    pub fn pwb_depth(&self) -> usize {
        self.pwb.len()
    }

    /// Walks currently executing on walkers.
    pub fn active_walks(&self) -> usize {
        self.active.len()
    }

    /// Walkers not currently occupied and not already spoken for by PWB
    /// backlog — the quantity the hybrid Request Distributor checks before
    /// preferring hardware.
    pub fn free_walkers(&self) -> usize {
        self.cfg
            .walkers
            .saturating_sub(self.active.len())
            .saturating_sub(self.pwb.len())
    }

    /// Whether nothing is queued, active or awaiting drain.
    pub fn is_idle(&self) -> bool {
        self.pwb.is_empty()
            && self.active.is_empty()
            && self.mem_out.is_empty()
            && self.completions.is_empty()
    }

    /// Presents a walk request. Returns `false` (and counts a rejection)
    /// if the PWB is full; the caller must retry later.
    ///
    /// With NHA enabled, a request whose leaf PTE shares a page-table
    /// sector with a pending or active radix walk is absorbed into that
    /// walk for free.
    pub fn enqueue(&mut self, req: WalkRequest) -> bool {
        if self.cfg.nha {
            let ptes_per_sector = self.cfg.sector_bytes / Pte::SIZE_BYTES;
            let group = req.vpn.value() / ptes_per_sector;
            // NHA is gated on the ASID: neighbouring VPNs of *different*
            // tenants live in different page tables, so their leaf PTEs
            // never share a sector.
            if let Some(p) = self.pwb.iter_mut().find(|p| {
                p.reqs[0].asid == req.asid && p.reqs[0].vpn.value() / ptes_per_sector == group
            }) {
                p.reqs.push(req);
                self.stats.nha_merges += 1;
                Self::track_owner(&mut self.owner_counts, &req);
                return true;
            }
            let target = self.active.values_mut().find(|w| {
                matches!(w.engine, Engine::Radix { .. })
                    && w.reqs[0].asid == req.asid
                    && w.reqs[0].vpn.value() / ptes_per_sector == group
            });
            if let Some(w) = target {
                w.reqs.push(req);
                self.stats.nha_merges += 1;
                Self::track_owner(&mut self.owner_counts, &req);
                return true;
            }
        }
        if self.pwb.len() >= self.cfg.pwb_entries {
            self.stats.pwb_rejections += 1;
            return false;
        }
        Self::track_owner(&mut self.owner_counts, &req);
        self.pwb.push_back(PendingWalk { reqs: vec![req] });
        true
    }

    fn track_owner(
        counts: &mut HashMap<(swgpu_types::SmId, swgpu_types::WarpId), usize>,
        req: &WalkRequest,
    ) {
        if let Some(owner) = req.owner {
            *counts.entry(owner).or_insert(0) += 1;
        }
    }

    fn release_owners(&mut self, reqs: &[WalkRequest]) {
        for r in reqs {
            if let Some(owner) = r.owner {
                if let Some(c) = self.owner_counts.get_mut(&owner) {
                    *c -= 1;
                    if *c == 0 {
                        self.owner_counts.remove(&owner);
                    }
                }
            }
        }
    }

    /// Picks the next pending walk according to the PWB policy.
    fn dequeue_pending(&mut self) -> Option<PendingWalk> {
        match self.cfg.pwb_policy {
            PwbPolicy::Fifo => self.pwb.pop_front(),
            PwbPolicy::WarpShortestFirst => {
                let pos = self
                    .pwb
                    .iter()
                    .enumerate()
                    .min_by_key(|(i, p)| {
                        let count = p.reqs[0]
                            .owner
                            .map(|o| self.owner_counts.get(&o).copied().unwrap_or(0))
                            .unwrap_or(usize::MAX);
                        (count, *i)
                    })
                    .map(|(i, _)| i)?;
                self.pwb.remove(pos)
            }
        }
    }

    /// Advances the subsystem one cycle: fires watchdogs and pending
    /// retries, wakes fixed-latency walks and starts new walks on idle
    /// walkers (bounded by PWB ports).
    pub fn tick(&mut self, now: Cycle, ctx: &mut WalkContext<'_>, ids: &mut IdGen) {
        if self.fault.is_some() {
            self.tick_fault(now, ids);
        }
        while let Some(walk_id) = self.fixed_wake.pop_ready(now) {
            self.advance(walk_id, now, ctx, ids);
        }
        let mut started = 0usize;
        while started < self.cfg.pwb_ports
            && self.active.len() < self.cfg.walkers
            && !self.pwb.is_empty()
        {
            let pending = self.dequeue_pending().expect("checked non-empty");
            self.start_walk(pending, now, ctx, ids);
            started += 1;
        }
    }

    fn start_walk(
        &mut self,
        pending: PendingWalk,
        now: Cycle,
        ctx: &mut WalkContext<'_>,
        ids: &mut IdGen,
    ) {
        let walk_id = self.next_walk_id;
        self.next_walk_id += 1;
        let vpn = pending.reqs[0].vpn;
        let asid = pending.reqs[0].asid;
        let engine = match ctx.table {
            TableRef::Radix { .. } => {
                // The PWC's per-ASID roots select the tenant's table on a
                // total miss; hits already carry the right node base
                // because PWC tags include the ASID.
                let start = ctx.pwc.lookup(asid, vpn);
                Engine::Radix {
                    level: start.level,
                    node: start.node_base,
                }
            }
            TableRef::Hashed(hpt) => Engine::Hashed {
                probe_idx: 0,
                addrs: hpt.walk(vpn).addrs().to_vec(),
            },
        };
        let walk = ActiveWalk {
            reqs: pending.reqs,
            started_at: now,
            engine,
            retries: 0,
            pending_inj: 0,
            gen: 0,
            wait_id: None,
        };
        let addr = Self::current_read_addr(&walk);
        self.active.insert(walk_id, walk);
        self.stats.max_active = self.stats.max_active.max(self.active.len() as u64);
        self.issue_read(walk_id, addr, now, ids);
    }

    fn current_read_addr(walk: &ActiveWalk) -> PhysAddr {
        match &walk.engine {
            Engine::Radix { level, node } => {
                RadixPageTable::entry_addr(*level, *node, walk.reqs[0].vpn)
            }
            Engine::Hashed { probe_idx, addrs } => addrs[*probe_idx],
        }
    }

    fn issue_read(&mut self, walk_id: u64, addr: PhysAddr, now: Cycle, ids: &mut IdGen) {
        self.stats.memory_reads += 1;
        match self.cfg.timing {
            WalkTiming::Memory => {
                let id = ids.next_mem();
                self.mem_wait.insert(id, walk_id);
                self.mem_out
                    .push_back(MemReq::new(id, addr, AccessKind::PageTable));
                if let Some(fs) = self.fault.as_mut() {
                    let walk = self.active.get_mut(&walk_id).expect("issuing unknown walk");
                    walk.wait_id = Some(id);
                    let deadline = now + fs.plan.backoff_cycles(walk.retries);
                    fs.watchdog.push(deadline, (walk_id, walk.gen));
                }
            }
            WalkTiming::FixedPerLevel(lat) => {
                self.fixed_wake.push(now + lat, walk_id);
            }
        }
    }

    /// Fires due watchdog deadlines and backoff retries. Only called when
    /// a fault plan is armed.
    fn tick_fault(&mut self, now: Cycle, ids: &mut IdGen) {
        loop {
            let fs = self.fault.as_mut().expect("tick_fault without plan");
            if let Some((walk_id, gen)) = fs.retry_wake.pop_ready(now) {
                let Some(walk) = self.active.get(&walk_id) else {
                    continue;
                };
                if walk.gen != gen {
                    continue;
                }
                let addr = Self::current_read_addr(walk);
                self.issue_read(walk_id, addr, now, ids);
                continue;
            }
            let Some((walk_id, gen)) = fs.watchdog.pop_ready(now) else {
                break;
            };
            let stale = match self.active.get(&walk_id) {
                Some(walk) => walk.gen != gen || walk.wait_id.is_none(),
                None => true,
            };
            if stale {
                continue;
            }
            self.fault.as_mut().expect("armed").stats.watchdog_timeouts += 1;
            let walk = self.active.get_mut(&walk_id).expect("checked above");
            if let Some(id) = walk.wait_id.take() {
                // A response for the cancelled read may still arrive (a
                // delay, not a drop, tripped the watchdog); removing the
                // mapping makes it a no-op instead of a double-advance.
                self.mem_wait.remove(&id);
            }
            walk.gen += 1;
            self.retry_or_escalate(walk_id, now, ids);
        }
    }

    /// Consumes one retry for `walk_id` (re-issuing its current read
    /// immediately), or escalates it when the retry budget is spent.
    fn retry_or_escalate(&mut self, walk_id: u64, now: Cycle, ids: &mut IdGen) {
        let fs = self.fault.as_mut().expect("fault path without plan");
        let max_retries = fs.plan.max_retries;
        let walk = self
            .active
            .get_mut(&walk_id)
            .expect("retrying unknown walk");
        if walk.retries >= max_retries {
            self.escalate(walk_id, now);
            return;
        }
        walk.retries += 1;
        fs.stats.walk_retries += 1;
        let addr = Self::current_read_addr(walk);
        self.issue_read(walk_id, addr, now, ids);
    }

    /// Schedules a backoff-delayed retry for a walk whose read decoded a
    /// corrupted entry, or escalates it when the retry budget is spent.
    fn schedule_retry_or_escalate(&mut self, walk_id: u64, now: Cycle) {
        let fs = self.fault.as_mut().expect("fault path without plan");
        let max_retries = fs.plan.max_retries;
        let walk = self
            .active
            .get_mut(&walk_id)
            .expect("retrying unknown walk");
        if walk.retries >= max_retries {
            self.escalate(walk_id, now);
            return;
        }
        walk.retries += 1;
        walk.gen += 1;
        fs.stats.walk_retries += 1;
        let wake = now + fs.plan.backoff_cycles(walk.retries);
        fs.retry_wake.push(wake, (walk_id, walk.gen));
    }

    /// Hands a walk to the fault buffer / driver: every VPN completes
    /// with `pfn: None` and the attributed injections are counted as
    /// escalated. The owner (the full simulator) routes these fault
    /// results through the UVM driver for repair + replay.
    fn escalate(&mut self, walk_id: u64, now: Cycle) {
        let walk = self
            .active
            .remove(&walk_id)
            .expect("escalating unknown walk");
        if let Some(id) = walk.wait_id {
            self.mem_wait.remove(&id);
        }
        self.release_owners(&walk.reqs);
        let fs = self.fault.as_mut().expect("escalation without plan");
        fs.stats.fault_escalations += 1;
        fs.stats.escalated_injections += walk.pending_inj;
        let results = walk
            .reqs
            .iter()
            .map(|r| WalkResult {
                asid: r.asid,
                vpn: r.vpn,
                pfn: None,
                issued_at: r.issued_at,
            })
            .collect();
        self.complete(walk.started_at, now, results);
    }

    /// Notifies the subsystem that a memory read it issued was dropped by
    /// fault injection (it will never get a response). Returns whether
    /// the id belonged to this subsystem. Recovery happens via the
    /// already-armed watchdog deadline.
    pub fn on_mem_dropped(&mut self, id: MemReqId) -> bool {
        let Some(walk_id) = self.mem_wait.remove(&id) else {
            return false;
        };
        let walk = self
            .active
            .get_mut(&walk_id)
            .expect("drop for unknown walk");
        walk.pending_inj += 1;
        // Leave wait_id armed: the watchdog uses it to tell "waiting on
        // memory" from "advancing"; the timeout fires and re-issues.
        true
    }

    /// Next memory read destined for the L2 data cache, if any.
    pub fn pop_mem_request(&mut self) -> Option<MemReq> {
        self.mem_out.pop_front()
    }

    /// Notifies the subsystem that a memory read it issued has completed.
    /// Unknown ids are ignored (they belong to other agents).
    pub fn on_mem_response(
        &mut self,
        id: MemReqId,
        now: Cycle,
        ctx: &mut WalkContext<'_>,
        ids: &mut IdGen,
    ) -> bool {
        match self.mem_wait.remove(&id) {
            Some(walk_id) => {
                self.advance(walk_id, now, ctx, ids);
                true
            }
            None => false,
        }
    }

    /// Credits a finishing walk's attributed injections as recovered:
    /// the walk reached its true conclusion despite them.
    fn credit_recovered(&mut self, pending_inj: u64) {
        if let Some(fs) = self.fault.as_mut() {
            fs.stats.recovered_injections += pending_inj;
        }
    }

    /// One level's data is available: decode it and descend / complete.
    fn advance(&mut self, walk_id: u64, now: Cycle, ctx: &mut WalkContext<'_>, ids: &mut IdGen) {
        let walk = self
            .active
            .get_mut(&walk_id)
            .expect("advance() on unknown walk");
        if self.fault.is_some() {
            // Progress: the pending read (if any) resolved, so any armed
            // watchdog deadline for it is now stale.
            walk.wait_id = None;
            walk.gen += 1;
        }
        match &mut walk.engine {
            Engine::Radix { level, node } => {
                let vpn = walk.reqs[0].vpn;
                let asid = walk.reqs[0].asid;
                if *level == LEAF_LEVEL {
                    // Leaf sector available: decode each coalesced VPN's PTE.
                    let node = *node;
                    let mut corrupted_n = 0u64;
                    let mut results = Vec::with_capacity(walk.reqs.len());
                    for r in walk.reqs.iter() {
                        let addr = RadixPageTable::entry_addr(LEAF_LEVEL, node, r.vpn);
                        let inj = self.fault.as_mut().map(|f| {
                            (
                                &mut f.inj,
                                f.plan.pte_corrupt_rate,
                                f.plan.pte_silent_corrupt_rate,
                            )
                        });
                        let sink = self.observed.then_some(&mut self.obs_events);
                        let (pte, corrupted) =
                            read_pte_observed(ctx.mem, addr, inj, r.vpn, LEAF_LEVEL, now, sink);
                        corrupted_n += u64::from(corrupted);
                        results.push(WalkResult {
                            asid: r.asid,
                            vpn: r.vpn,
                            pfn: pte.is_valid().then(|| pte.pfn()),
                            issued_at: r.issued_at,
                        });
                    }
                    if corrupted_n > 0 {
                        walk.pending_inj += corrupted_n;
                        self.schedule_retry_or_escalate(walk_id, now);
                        return;
                    }
                    let walk = self.active.remove(&walk_id).expect("present");
                    self.release_owners(&walk.reqs);
                    self.credit_recovered(walk.pending_inj);
                    self.complete(walk.started_at, now, results);
                } else {
                    let addr = RadixPageTable::entry_addr(*level, *node, vpn);
                    let lvl = *level;
                    let inj = self.fault.as_mut().map(|f| {
                        (
                            &mut f.inj,
                            f.plan.pte_corrupt_rate,
                            f.plan.pte_silent_corrupt_rate,
                        )
                    });
                    let sink = self.observed.then_some(&mut self.obs_events);
                    let (pde, corrupted) =
                        read_pte_observed(ctx.mem, addr, inj, vpn, lvl, now, sink);
                    if corrupted {
                        walk.pending_inj += 1;
                        self.schedule_retry_or_escalate(walk_id, now);
                        return;
                    }
                    match RadixPageTable::next_node(pde) {
                        Some(next) => {
                            *level -= 1;
                            *node = next;
                            ctx.pwc.fill(asid, vpn, *level, next);
                            let addr = Self::current_read_addr(walk);
                            self.issue_read(walk_id, addr, now, ids);
                        }
                        None => {
                            // Directory-level fault: every coalesced VPN
                            // shares the faulting path.
                            let walk = self.active.remove(&walk_id).expect("present");
                            self.release_owners(&walk.reqs);
                            self.credit_recovered(walk.pending_inj);
                            let results = walk
                                .reqs
                                .iter()
                                .map(|r| WalkResult {
                                    asid: r.asid,
                                    vpn: r.vpn,
                                    pfn: None,
                                    issued_at: r.issued_at,
                                })
                                .collect();
                            self.complete(walk.started_at, now, results);
                        }
                    }
                }
            }
            Engine::Hashed { probe_idx, addrs } => {
                let hpt = match ctx.table {
                    TableRef::Hashed(h) => h,
                    TableRef::Radix { .. } => {
                        unreachable!("hashed walk with radix context")
                    }
                };
                let vpn = walk.reqs[0].vpn;
                let bucket = addrs[*probe_idx];
                if let Some(pte) = hpt.match_in_bucket(vpn, bucket, ctx.mem) {
                    let walk = self.active.remove(&walk_id).expect("present");
                    self.release_owners(&walk.reqs);
                    self.credit_recovered(walk.pending_inj);
                    let results = vec![WalkResult {
                        asid: walk.reqs[0].asid,
                        vpn,
                        pfn: pte.is_valid().then(|| pte.pfn()),
                        issued_at: walk.reqs[0].issued_at,
                    }];
                    self.complete(walk.started_at, now, results);
                } else {
                    *probe_idx += 1;
                    if *probe_idx >= addrs.len() {
                        let walk = self.active.remove(&walk_id).expect("present");
                        self.release_owners(&walk.reqs);
                        self.credit_recovered(walk.pending_inj);
                        let results = vec![WalkResult {
                            asid: walk.reqs[0].asid,
                            vpn,
                            pfn: None,
                            issued_at: walk.reqs[0].issued_at,
                        }];
                        self.complete(walk.started_at, now, results);
                    } else {
                        let addr = Self::current_read_addr(walk);
                        self.issue_read(walk_id, addr, now, ids);
                    }
                }
            }
        }
    }

    fn complete(&mut self, started_at: Cycle, now: Cycle, results: Vec<WalkResult>) {
        self.stats.walks_completed += 1;
        for r in &results {
            self.stats.translations_completed += 1;
            if r.pfn.is_none() {
                self.stats.faults += 1;
            }
            self.stats.total_queue_cycles += started_at.since(r.issued_at);
            self.stats.total_access_cycles += now.since(started_at);
        }
        self.completions.push_back(WalkCompletion {
            results,
            started_at,
            completed_at: now,
        });
    }

    /// Next finished walk, if any.
    pub fn pop_completion(&mut self) -> Option<WalkCompletion> {
        self.completions.pop_front()
    }
}

impl swgpu_types::Component for PtwSubsystem {
    /// Immediate work — a startable PWB entry, an un-routed memory
    /// request or an un-drained completion — demands the very next cycle.
    /// Otherwise the subsystem sleeps until its earliest timed wake: a
    /// fixed-latency walk step, a fault watchdog deadline or a delayed
    /// retry. Walks parked in `mem_wait` need no event of their own; the
    /// DRAM/L2D completion that revives them is the memory side's event.
    fn next_event(&self) -> Option<Cycle> {
        if (!self.pwb.is_empty() && self.active.len() < self.cfg.walkers)
            || !self.mem_out.is_empty()
            || !self.completions.is_empty()
        {
            return Some(Cycle::ZERO);
        }
        let mut next = self.fixed_wake.next_ready();
        if let Some(f) = &self.fault {
            for cand in [f.watchdog.next_ready(), f.retry_wake.next_ready()] {
                next = match (next, cand) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
        }
        next
    }

    fn is_idle(&self) -> bool {
        PtwSubsystem::is_idle(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swgpu_mem::PhysMem;
    use swgpu_pt::{AddressSpace, PageWalkCache};
    use swgpu_types::{PageSize, Vpn};

    struct Rig {
        mem: PhysMem,
        space: AddressSpace,
        pwc: PageWalkCache,
        ids: IdGen,
    }

    impl Rig {
        fn new(pages: u64) -> Self {
            let mut mem = PhysMem::new();
            let mut space = AddressSpace::new(PageSize::Size64K, &mut mem);
            space.map_region(swgpu_types::VirtAddr::new(0), pages * 64 * 1024, &mut mem);
            let mut pwc = PageWalkCache::new(32);
            pwc.set_root(swgpu_types::Asid::ZERO, space.radix().root());
            Self {
                mem,
                space,
                pwc,
                ids: IdGen::new(),
            }
        }

        /// Splits the rig into a walk context plus the id generator so both
        /// can be borrowed simultaneously.
        fn parts(&mut self) -> (WalkContext<'_>, &mut IdGen) {
            let ctx = WalkContext {
                mem: &self.mem,
                pwc: &mut self.pwc,
                table: TableRef::Radix {
                    root: self.space.radix().root(),
                },
            };
            (ctx, &mut self.ids)
        }
    }

    /// Runs the subsystem to completion, answering every memory read after
    /// `mem_lat` cycles, and returns all completions.
    fn run_to_idle(
        sub: &mut PtwSubsystem,
        rig: &mut Rig,
        mut now: Cycle,
        mem_lat: u64,
    ) -> (Vec<WalkCompletion>, Cycle) {
        let mut done = Vec::new();
        let mut inflight: DelayQueue<MemReqId> = DelayQueue::new();
        for _ in 0..1_000_000u64 {
            {
                let (mut ctx, ids) = rig.parts();
                sub.tick(now, &mut ctx, ids);
            }
            while let Some(req) = sub.pop_mem_request() {
                inflight.push(now + mem_lat, req.id);
            }
            while let Some(id) = inflight.pop_ready(now) {
                let (mut ctx, ids) = rig.parts();
                sub.on_mem_response(id, now, &mut ctx, ids);
            }
            while let Some(c) = sub.pop_completion() {
                done.push(c);
            }
            if sub.is_idle() && inflight.is_empty() {
                return (done, now);
            }
            now = now.next();
        }
        panic!("subsystem did not drain");
    }

    #[test]
    fn single_walk_translates_correctly() {
        let mut rig = Rig::new(8);
        let mut sub = PtwSubsystem::new(PtwConfig::default());
        assert!(sub.enqueue(WalkRequest::new(Vpn::new(3), Cycle::ZERO)));
        let (done, _) = run_to_idle(&mut sub, &mut rig, Cycle::ZERO, 100);
        assert_eq!(done.len(), 1);
        let r = done[0].results[0];
        let expect = rig.space.mappings().nth(3).unwrap().1;
        assert_eq!(r.pfn, Some(expect));
        // Cold walk: 4 levels x 100 cycles (+ per-cycle loop granularity).
        let access = done[0].completed_at.since(done[0].started_at);
        assert!((400..=408).contains(&access), "access={access}");
    }

    #[test]
    fn unmapped_vpn_faults() {
        let mut rig = Rig::new(2);
        let mut sub = PtwSubsystem::new(PtwConfig::default());
        sub.enqueue(WalkRequest::new(Vpn::new(0x7_0000), Cycle::ZERO));
        let (done, _) = run_to_idle(&mut sub, &mut rig, Cycle::ZERO, 10);
        assert_eq!(done[0].results[0].pfn, None);
        assert_eq!(sub.stats().faults, 1);
    }

    #[test]
    fn pwc_warm_walk_skips_levels() {
        let mut rig = Rig::new(8);
        let mut sub = PtwSubsystem::new(PtwConfig::default());
        sub.enqueue(WalkRequest::new(Vpn::new(1), Cycle::ZERO));
        let (done, end) = run_to_idle(&mut sub, &mut rig, Cycle::ZERO, 100);
        let cold = done[0].completed_at.since(done[0].started_at);
        // Second walk to a neighbouring VPN hits the PWC at the deepest
        // level: 1 read instead of 4.
        sub.enqueue(WalkRequest::new(Vpn::new(2), end));
        let (done2, _) = run_to_idle(&mut sub, &mut rig, end, 100);
        let warm = done2[0].completed_at.since(done2[0].started_at);
        assert!(warm < cold / 3, "warm={warm} cold={cold}");
    }

    #[test]
    fn limited_walkers_cause_queueing() {
        let mut rig = Rig::new(64);
        let mut sub = PtwSubsystem::new(PtwConfig {
            walkers: 1,
            pwb_ports: 1,
            ..PtwConfig::default()
        });
        for i in 0..8u64 {
            // Spread across leaf sectors so NHA-free walks stay distinct.
            assert!(sub.enqueue(WalkRequest::new(Vpn::new(i * 8), Cycle::ZERO)));
        }
        let (done, _) = run_to_idle(&mut sub, &mut rig, Cycle::ZERO, 50);
        assert_eq!(done.len(), 8);
        let s = sub.stats();
        assert!(
            s.avg_queue_delay() > s.avg_access_latency(),
            "with one walker, queueing ({:.0}) should dominate access ({:.0})",
            s.avg_queue_delay(),
            s.avg_access_latency()
        );
    }

    #[test]
    fn ample_walkers_eliminate_queueing() {
        let mut rig = Rig::new(64);
        let mut sub = PtwSubsystem::new(PtwConfig {
            walkers: 64,
            pwb_ports: 64,
            ..PtwConfig::default()
        });
        for i in 0..8u64 {
            sub.enqueue(WalkRequest::new(Vpn::new(i * 8), Cycle::ZERO));
        }
        let (done, _) = run_to_idle(&mut sub, &mut rig, Cycle::ZERO, 50);
        assert_eq!(done.len(), 8);
        assert_eq!(sub.stats().total_queue_cycles, 0);
    }

    #[test]
    fn pwb_capacity_rejects() {
        let mut sub = PtwSubsystem::new(PtwConfig {
            pwb_entries: 2,
            ..PtwConfig::default()
        });
        assert!(sub.enqueue(WalkRequest::new(Vpn::new(0), Cycle::ZERO)));
        assert!(sub.enqueue(WalkRequest::new(Vpn::new(8), Cycle::ZERO)));
        assert!(!sub.enqueue(WalkRequest::new(Vpn::new(16), Cycle::ZERO)));
        assert_eq!(sub.stats().pwb_rejections, 1);
    }

    #[test]
    fn nha_coalesces_same_sector() {
        let mut rig = Rig::new(8);
        let mut sub = PtwSubsystem::new(PtwConfig {
            nha: true,
            ..PtwConfig::default()
        });
        // VPNs 0..4 share one 32B leaf sector (4 PTEs).
        for i in 0..4u64 {
            assert!(sub.enqueue(WalkRequest::new(Vpn::new(i), Cycle::ZERO)));
        }
        assert_eq!(sub.pwb_depth(), 1, "three requests merged");
        let (done, _) = run_to_idle(&mut sub, &mut rig, Cycle::ZERO, 50);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].results.len(), 4);
        assert_eq!(sub.stats().nha_merges, 3);
        // Every coalesced VPN translated correctly.
        let mappings: Vec<_> = rig.space.mappings().collect();
        for r in &done[0].results {
            assert_eq!(r.pfn, Some(mappings[r.vpn.value() as usize].1));
        }
    }

    #[test]
    fn nha_does_not_merge_distinct_sectors() {
        let mut sub = PtwSubsystem::new(PtwConfig {
            nha: true,
            ..PtwConfig::default()
        });
        sub.enqueue(WalkRequest::new(Vpn::new(0), Cycle::ZERO));
        sub.enqueue(WalkRequest::new(Vpn::new(4), Cycle::ZERO));
        assert_eq!(sub.pwb_depth(), 2);
        assert_eq!(sub.stats().nha_merges, 0);
    }

    #[test]
    fn nha_does_not_merge_across_tenants() {
        let mut sub = PtwSubsystem::new(PtwConfig {
            nha: true,
            ..PtwConfig::default()
        });
        // Same leaf sector (VPNs 0 and 1), but different address spaces:
        // their PTEs live in different page tables, so a shared sector
        // read would be wrong.
        sub.enqueue(WalkRequest::new(Vpn::new(0), Cycle::ZERO));
        sub.enqueue(WalkRequest::new(Vpn::new(1), Cycle::ZERO).for_asid(swgpu_types::Asid::new(1)));
        assert_eq!(sub.pwb_depth(), 2, "cross-tenant requests stay separate");
        assert_eq!(sub.stats().nha_merges, 0);
        // Same tenant still merges.
        sub.enqueue(WalkRequest::new(Vpn::new(2), Cycle::ZERO).for_asid(swgpu_types::Asid::new(1)));
        assert_eq!(sub.pwb_depth(), 2);
        assert_eq!(sub.stats().nha_merges, 1);
    }

    #[test]
    fn fixed_per_level_timing() {
        let mut rig = Rig::new(8);
        let mut sub = PtwSubsystem::new(PtwConfig {
            timing: WalkTiming::FixedPerLevel(100),
            ..PtwConfig::default()
        });
        sub.enqueue(WalkRequest::new(Vpn::new(1), Cycle::ZERO));
        let (done, _) = run_to_idle(&mut sub, &mut rig, Cycle::ZERO, 0);
        let access = done[0].completed_at.since(done[0].started_at);
        assert_eq!(access, 400, "4 levels x 100 fixed cycles");
        assert_eq!(sub.stats().memory_reads, 4);
    }

    #[test]
    fn hashed_walk_single_access() {
        let mut rig = Rig::new(32);
        let hpt = rig.space.build_hashed(&mut rig.mem);
        let mut sub = PtwSubsystem::new(PtwConfig::default());
        sub.enqueue(WalkRequest::new(Vpn::new(5), Cycle::ZERO));
        // Drive manually with a hashed context.
        let mut now = Cycle::ZERO;
        let mut pending: Option<(Cycle, MemReqId)> = None;
        let mut result = None;
        for _ in 0..10_000 {
            {
                let Rig { mem, pwc, ids, .. } = &mut rig;
                let mut ctx = WalkContext {
                    mem,
                    pwc,
                    table: TableRef::Hashed(&hpt),
                };
                sub.tick(now, &mut ctx, ids);
                if let Some((ready, id)) = pending {
                    if ready <= now {
                        sub.on_mem_response(id, now, &mut ctx, ids);
                        pending = None;
                    }
                }
            }
            if let Some(req) = sub.pop_mem_request() {
                pending = Some((now + 80, req.id));
            }
            if let Some(c) = sub.pop_completion() {
                result = Some(c);
                break;
            }
            now = now.next();
        }
        let c = result.expect("hashed walk completed");
        let expect = rig.space.mappings().nth(5).unwrap().1;
        assert_eq!(c.results[0].pfn, Some(expect));
        let access = c.completed_at.since(c.started_at);
        assert!(
            access <= 2 * 81,
            "hashed walk should take ~1 probe, took {access}"
        );
    }

    #[test]
    fn warp_shortest_first_prioritizes_nearly_done_warps() {
        use crate::request::WalkOwner;
        use swgpu_types::{SmId, WarpId};
        let mut rig = Rig::new(512);
        let mut sub = PtwSubsystem::new(PtwConfig {
            walkers: 1,
            pwb_ports: 1,
            pwb_entries: 64,
            pwb_policy: PwbPolicy::WarpShortestFirst,
            ..PtwConfig::default()
        });
        let warp_a: WalkOwner = Some((SmId::new(0), WarpId::new(0))); // 4 walks
        let warp_b: WalkOwner = Some((SmId::new(0), WarpId::new(1))); // 1 walk
        for i in 0..4u64 {
            assert!(sub.enqueue(WalkRequest::with_owner(
                Vpn::new(i * 8),
                Cycle::ZERO,
                warp_a
            )));
        }
        assert!(sub.enqueue(WalkRequest::with_owner(Vpn::new(100), Cycle::ZERO, warp_b)));
        let (done, _) = run_to_idle(&mut sub, &mut rig, Cycle::ZERO, 50);
        assert_eq!(done.len(), 5);
        // Warp B's single walk (enqueued last) must complete before warp
        // A's backlog drains: with one walker, FIFO would finish it last;
        // shortest-first schedules it after at most one A-walk.
        let b_pos = done
            .iter()
            .position(|c| c.results[0].vpn == Vpn::new(100))
            .expect("warp B completed");
        assert!(b_pos <= 1, "warp B finished at position {b_pos}");
    }

    #[test]
    fn fifo_policy_preserves_arrival_order() {
        let mut rig = Rig::new(512);
        let mut sub = PtwSubsystem::new(PtwConfig {
            walkers: 1,
            pwb_ports: 1,
            ..PtwConfig::default()
        });
        for i in 0..4u64 {
            assert!(sub.enqueue(WalkRequest::new(Vpn::new(i * 8), Cycle::ZERO)));
        }
        let (done, _) = run_to_idle(&mut sub, &mut rig, Cycle::ZERO, 50);
        let order: Vec<u64> = done.iter().map(|c| c.results[0].vpn.value()).collect();
        assert_eq!(order, vec![0, 8, 16, 24]);
    }

    #[test]
    fn zero_rate_fault_plan_is_inert() {
        let mut rig = Rig::new(8);
        let mut sub = PtwSubsystem::new(PtwConfig::default());
        sub.set_fault_plan(&FaultPlan::default());
        assert!(sub.fault.is_none(), "zero-rate plan must not arm");
        sub.enqueue(WalkRequest::new(Vpn::new(3), Cycle::ZERO));
        let (done, _) = run_to_idle(&mut sub, &mut rig, Cycle::ZERO, 100);
        assert_eq!(done.len(), 1);
        assert!(!sub.fault_stats().any());
    }

    #[test]
    fn corruption_is_retried_and_conserved() {
        let mut rig = Rig::new(64);
        let mut sub = PtwSubsystem::new(PtwConfig::default());
        sub.set_fault_plan(&FaultPlan {
            seed: 11,
            pte_corrupt_rate: 0.25,
            watchdog_cycles: 2_000,
            ..FaultPlan::default()
        });
        for i in 0..16u64 {
            assert!(sub.enqueue(WalkRequest::new(Vpn::new(i * 8), Cycle::ZERO)));
        }
        let (done, _) = run_to_idle(&mut sub, &mut rig, Cycle::ZERO, 50);
        let delivered: usize = done.iter().map(|c| c.results.len()).sum();
        assert_eq!(delivered, 16, "every translation must complete");
        let fs = sub.fault_stats();
        assert!(fs.injected_pte_corruptions > 0, "rate 0.25 never fired");
        assert_eq!(
            fs.injected_total(),
            fs.recovered_injections + fs.escalated_injections,
            "injected faults leaked: {fs:?}"
        );
    }

    #[test]
    fn permanent_corruption_escalates_after_bounded_retries() {
        let mut rig = Rig::new(8);
        let mut sub = PtwSubsystem::new(PtwConfig::default());
        sub.set_fault_plan(&FaultPlan {
            seed: 1,
            pte_corrupt_rate: 1.0,
            max_retries: 2,
            watchdog_cycles: 1_000,
            ..FaultPlan::default()
        });
        sub.enqueue(WalkRequest::new(Vpn::new(3), Cycle::ZERO));
        let (done, _) = run_to_idle(&mut sub, &mut rig, Cycle::ZERO, 50);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].results[0].pfn, None, "escalations fault-complete");
        let fs = sub.fault_stats();
        assert_eq!(fs.fault_escalations, 1);
        assert_eq!(fs.walk_retries, 2, "retry budget fully consumed");
        assert_eq!(fs.injected_total(), fs.escalated_injections);
        assert_eq!(fs.recovered_injections, 0);
    }

    #[test]
    fn dropped_response_recovers_via_watchdog() {
        let mut rig = Rig::new(8);
        let mut sub = PtwSubsystem::new(PtwConfig::default());
        sub.set_fault_plan(&FaultPlan {
            seed: 0,
            // Drops are injected by the cache, not the PTW; arm the plan
            // via a rate that never fires here so the watchdog is live.
            mem_drop_rate: 1.0,
            watchdog_cycles: 500,
            ..FaultPlan::default()
        });
        sub.enqueue(WalkRequest::new(Vpn::new(3), Cycle::ZERO));
        let mut now = Cycle::ZERO;
        let mut inflight: DelayQueue<MemReqId> = DelayQueue::new();
        let mut dropped_first = false;
        let mut done = Vec::new();
        for _ in 0..1_000_000u64 {
            {
                let (mut ctx, ids) = rig.parts();
                sub.tick(now, &mut ctx, ids);
            }
            while let Some(req) = sub.pop_mem_request() {
                if !dropped_first {
                    dropped_first = true;
                    assert!(sub.on_mem_dropped(req.id), "drop must be attributed");
                } else {
                    inflight.push(now + 50, req.id);
                }
            }
            while let Some(id) = inflight.pop_ready(now) {
                let (mut ctx, ids) = rig.parts();
                sub.on_mem_response(id, now, &mut ctx, ids);
            }
            while let Some(c) = sub.pop_completion() {
                done.push(c);
            }
            if sub.is_idle() && inflight.is_empty() {
                break;
            }
            now = now.next();
        }
        assert_eq!(done.len(), 1, "walk never completed after drop");
        let expect = rig.space.mappings().nth(3).unwrap().1;
        assert_eq!(done[0].results[0].pfn, Some(expect));
        let fs = sub.fault_stats();
        assert_eq!(fs.watchdog_timeouts, 1);
        assert_eq!(fs.walk_retries, 1);
        assert_eq!(fs.recovered_injections, 1, "the drop resolved in place");
    }

    #[test]
    fn multi_owner_fault_completion_releases_owner_once() {
        // Regression: the directory-fault path used to call
        // release_owners three times, corrupting owner_counts for warps
        // with several outstanding walks.
        use crate::request::WalkOwner;
        use swgpu_types::{SmId, WarpId};
        let mut rig = Rig::new(2);
        let mut sub = PtwSubsystem::new(PtwConfig {
            pwb_policy: PwbPolicy::WarpShortestFirst,
            ..PtwConfig::default()
        });
        let warp: WalkOwner = Some((SmId::new(0), WarpId::new(0)));
        // One unmapped VPN (directory fault) and two mapped, same owner.
        assert!(sub.enqueue(WalkRequest::with_owner(
            Vpn::new(0x7_0000),
            Cycle::ZERO,
            warp
        )));
        assert!(sub.enqueue(WalkRequest::with_owner(Vpn::new(0), Cycle::ZERO, warp)));
        assert!(sub.enqueue(WalkRequest::with_owner(Vpn::new(1), Cycle::ZERO, warp)));
        let (done, _) = run_to_idle(&mut sub, &mut rig, Cycle::ZERO, 10);
        assert_eq!(done.iter().map(|c| c.results.len()).sum::<usize>(), 3);
        assert!(
            sub.owner_counts.is_empty(),
            "owner accounting leaked: {:?}",
            sub.owner_counts
        );
    }

    #[test]
    fn free_walkers_accounts_backlog() {
        let mut sub = PtwSubsystem::new(PtwConfig {
            walkers: 4,
            ..PtwConfig::default()
        });
        assert_eq!(sub.free_walkers(), 4);
        sub.enqueue(WalkRequest::new(Vpn::new(0), Cycle::ZERO));
        sub.enqueue(WalkRequest::new(Vpn::new(8), Cycle::ZERO));
        assert_eq!(sub.free_walkers(), 2);
    }
}
