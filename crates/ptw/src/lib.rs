//! The hardware page walk subsystem: Page Walk Buffer, PTW pool and
//! Neighborhood-Aware (NHA) coalescing.
//!
//! This is the *baseline* translation machinery the paper contends with:
//! a small, fixed pool of hardware Page Table Walkers (32 in Table 3) fed
//! from a Page Walk Buffer (PWB). Under irregular workloads thousands of
//! concurrent L2 TLB misses pile up behind these walkers, and the resulting
//! queueing delay dominates total walk latency (95% — Figure 7). The same
//! subsystem, scaled up, provides the "more PTWs" comparison points of
//! Figures 5/12/21, the NHA \[86\] and FS-HPT \[32\] baselines of
//! Figure 16, and — with an unbounded pool — the "ideal" configuration.
//!
//! Walks are *timed*: each level is a real memory read issued into the L2
//! data cache / DRAM hierarchy; the subsystem reports per-walk queueing
//! delay and page-table access latency separately, which is exactly the
//! breakdown Figures 7 and 18 plot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod request;
mod subsystem;

pub use request::{TableRef, WalkCompletion, WalkContext, WalkOwner, WalkRequest, WalkResult};
pub use subsystem::{PtwConfig, PtwSubsystem, PwbPolicy, WalkStats, WalkTiming};
