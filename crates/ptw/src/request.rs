//! Walk request/completion messages and the walk execution context.

use swgpu_mem::PhysMem;
use swgpu_pt::{HashedPageTable, PageWalkCache};
use swgpu_types::{Asid, Cycle, Pfn, PhysAddr, SmId, Vpn, WarpId};

/// The warp a walk request originated from — used by the warp-aware PWB
/// scheduling policy of Shin et al. \[85\] (Table 1 in the paper), which
/// reduces the completion spread among a warp's divergent walk requests.
pub type WalkOwner = Option<(SmId, WarpId)>;

/// A page walk request as it arrives at the walk subsystem (from the L2
/// TLB MSHRs in the baseline, or at an SM's SoftPWB under SoftWalker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkRequest {
    /// Address space this walk translates for — selects the page-table
    /// root (via the PWC's per-ASID roots) and gates NHA coalescing.
    pub asid: Asid,
    /// Virtual page number to translate.
    pub vpn: Vpn,
    /// When the L2 TLB miss allocated this walk — queueing delay is
    /// measured from here.
    pub issued_at: Cycle,
    /// Originating warp, when known (drives warp-aware PWB scheduling).
    pub owner: WalkOwner,
}

impl WalkRequest {
    /// Creates a single-tenant ([`Asid::ZERO`]) request stamped with its
    /// issue time.
    pub fn new(vpn: Vpn, issued_at: Cycle) -> Self {
        Self {
            asid: Asid::ZERO,
            vpn,
            issued_at,
            owner: None,
        }
    }

    /// Creates a single-tenant request carrying its originating warp.
    pub fn with_owner(vpn: Vpn, issued_at: Cycle, owner: WalkOwner) -> Self {
        Self {
            asid: Asid::ZERO,
            vpn,
            issued_at,
            owner,
        }
    }

    /// Rebinds the request to a tenant's address space.
    pub fn for_asid(mut self, asid: Asid) -> Self {
        self.asid = asid;
        self
    }
}

/// Per-VPN outcome of a completed walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkResult {
    /// Address space the translation belongs to.
    pub asid: Asid,
    /// The translated VPN.
    pub vpn: Vpn,
    /// The mapped frame, or `None` on a page fault (invalid PTE — routed
    /// to the fault buffer / UVM driver).
    pub pfn: Option<Pfn>,
    /// Issue time of this VPN's original request.
    pub issued_at: Cycle,
}

/// A finished walk, possibly covering several NHA-coalesced VPNs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkCompletion {
    /// One result per VPN served by this walk (≥ 1; > 1 only with NHA).
    pub results: Vec<WalkResult>,
    /// When the walker started processing (end of queueing).
    pub started_at: Cycle,
    /// When the last level read completed.
    pub completed_at: Cycle,
}

/// Which translation structure walks traverse.
#[derive(Debug, Clone, Copy)]
pub enum TableRef<'a> {
    /// Four-level radix table rooted at the given node.
    Radix {
        /// Physical address of the root (level-4) node.
        root: PhysAddr,
    },
    /// FS-HPT hashed page table.
    Hashed(&'a HashedPageTable),
}

/// Borrowed simulator state a walker needs while executing: the backing
/// memory (to decode entries once their timed read completes), the page
/// walk cache, and the table being walked.
#[derive(Debug)]
pub struct WalkContext<'a> {
    /// Simulated physical memory holding the page-table bytes.
    pub mem: &'a PhysMem,
    /// The shared page walk cache (consulted at walk start, filled as the
    /// walk descends).
    pub pwc: &'a mut PageWalkCache,
    /// The structure being walked.
    pub table: TableRef<'a>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_carries_issue_time() {
        let r = WalkRequest::new(Vpn::new(7), Cycle::new(100));
        assert_eq!(r.vpn, Vpn::new(7));
        assert_eq!(r.issued_at, Cycle::new(100));
    }

    #[test]
    fn completion_latency_decomposes() {
        let c = WalkCompletion {
            results: vec![WalkResult {
                asid: Asid::ZERO,
                vpn: Vpn::new(1),
                pfn: Some(Pfn::new(2)),
                issued_at: Cycle::new(10),
            }],
            started_at: Cycle::new(50),
            completed_at: Cycle::new(80),
        };
        let r = c.results[0];
        assert_eq!(c.started_at.since(r.issued_at), 40); // queueing
        assert_eq!(c.completed_at.since(c.started_at), 30); // access
    }
}
