//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small, fully deterministic PRNG subset it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer ranges. The generator is a SplitMix64
//! core (Steele et al., "Fast splittable pseudorandom number
//! generators") — statistically solid for simulation policy decisions
//! and, crucially, stable across platforms and builds so seeded
//! simulations stay bit-reproducible.
//!
//! This is **not** the real `rand` crate: streams differ from upstream
//! `StdRng`. Everything in this repository only relies on determinism
//! under a fixed seed, never on a specific stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Seedable generators (mirror of `rand::SeedableRng`, reduced to the
/// `seed_from_u64` entry point the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be uniformly sampled from a half-open integer range.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)` using `rng`.
    fn sample_range(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                // Modulo reduction: the tiny bias over a 64-bit draw is
                // irrelevant for simulation policy decisions.
                let v = (rng.next_u64() as u128) % span;
                (low as u128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

/// High-level sampling helpers (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators (mirror of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    ///
    /// # Example
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::{Rng, SeedableRng};
    /// let mut a = StdRng::seed_from_u64(7);
    /// let mut b = StdRng::seed_from_u64(7);
    /// assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
    /// ```
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One scramble round so nearby seeds diverge immediately.
            let mut rng = StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..97), b.gen_range(0usize..97));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 32) == b.gen_range(0u64..1 << 32))
            .count();
        assert!(same < 4, "streams should differ: {same} collisions");
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5u32..17);
            assert!((5..17).contains(&v));
            let s = rng.gen_range(-8i64..9);
            assert!((-8..9).contains(&s));
        }
    }

    #[test]
    fn all_values_reachable_in_small_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
