//! The SM state machine: warps, scheduler, L1 TLB, L1D cache.

use crate::instr::{coalesce, InstrSource, WarpInstr};
use std::collections::{HashMap, VecDeque};
use swgpu_mem::{AccessKind, AccessOutcome, Cache, CacheConfig, CacheStats, MemReq};
use swgpu_tlb::{MshrOutcome, Tlb, TlbConfig, TlbMshr, TlbMshrConfig, TlbStats};
use swgpu_types::{
    Asid, Cycle, DelayQueue, IdGen, MemReqId, PageSize, Pfn, SmId, VirtAddr, Vpn, WarpId,
};

/// Static configuration of one SM (Table 3 defaults via [`SmConfig::new`]).
#[derive(Debug, Clone)]
pub struct SmConfig {
    /// This SM's index.
    pub id: SmId,
    /// Address space this SM's warps execute in. SMs are statically bound
    /// to one tenant (MIG-style), so every L1 TLB tag carries this ASID.
    pub asid: Asid,
    /// Resident warp contexts (48 in Table 3).
    pub max_warps: usize,
    /// L1 TLB geometry (32 entries, fully associative).
    pub l1_tlb: TlbConfig,
    /// L1 TLB MSHR file (32 entries x 192 merges).
    pub l1_mshr: TlbMshrConfig,
    /// L1 TLB lookup latency in cycles (10).
    pub l1_tlb_latency: u64,
    /// Private L1 data cache.
    pub l1d: CacheConfig,
    /// Translation granularity.
    pub page_size: PageSize,
    /// Memory sector size used by the coalescer (32 B).
    pub sector_bytes: u64,
}

impl SmConfig {
    /// Table 3 configuration for SM `id`.
    pub fn new(id: SmId) -> Self {
        Self {
            id,
            asid: Asid::ZERO,
            max_warps: 48,
            l1_tlb: TlbConfig::l1(),
            l1_mshr: TlbMshrConfig::l1(),
            l1_tlb_latency: 10,
            l1d: CacheConfig::l1d(),
            page_size: PageSize::Size64K,
            sector_bytes: 32,
        }
    }
}

/// Per-SM cycle and event counters. The cycle taxonomy (issued / memory
/// stall / scoreboard stall / idle) is the decomposition Figure 8 plots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmStats {
    /// Cycles in which a user warp issued an instruction.
    pub issued_cycles: u64,
    /// Cycles in which the issue port was consumed by a PW Warp.
    pub pw_issue_cycles: u64,
    /// Cycles with no eligible warp because at least one warp was waiting
    /// on memory (the dominant category for irregular workloads).
    pub mem_stall_cycles: u64,
    /// Cycles with no eligible warp, none waiting on memory, but some
    /// scoreboard-blocked on compute dependencies.
    pub scoreboard_stall_cycles: u64,
    /// Cycles with nothing to do at all (kernel drained).
    pub idle_cycles: u64,
    /// Warp instructions issued.
    pub instructions: u64,
    /// Memory (load) instructions issued.
    pub loads: u64,
    /// Translation lookups that had to retry because the L1 TLB MSHR file
    /// was saturated.
    pub l1_mshr_failures: u64,
    /// Translations that returned a fault (should not happen for fully
    /// mapped workloads; the lane accesses are dropped).
    pub xlat_faults: u64,
}

impl SmStats {
    /// Total accounted scheduler cycles.
    pub fn total_cycles(&self) -> u64 {
        self.issued_cycles
            + self.pw_issue_cycles
            + self.mem_stall_cycles
            + self.scoreboard_stall_cycles
            + self.idle_cycles
    }

    /// Total stalled cycles (memory + scoreboard) — the per-SM quantity
    /// the observability layer histograms across cores.
    pub fn stall_cycles(&self) -> u64 {
        self.mem_stall_cycles + self.scoreboard_stall_cycles
    }

    /// Fraction of cycles stalled (memory + scoreboard) — Figure 8's
    /// headline (~90% for irregular apps).
    pub fn stall_fraction(&self) -> f64 {
        let t = self.total_cycles();
        if t == 0 {
            0.0
        } else {
            (self.mem_stall_cycles + self.scoreboard_stall_cycles) as f64 / t as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WarpState {
    Ready,
    Compute(Cycle),
    Mem,
    Finished,
}

#[derive(Debug)]
struct Warp {
    state: WarpState,
    pending_xlat: usize,
    pending_data: usize,
}

#[derive(Debug)]
struct TlbLookup {
    warp: WarpId,
    vpn: Vpn,
    sector_vas: Vec<VirtAddr>,
    /// Whether this lookup already failed once on MSHR saturation. A
    /// retried lookup that *hits* (the translation arrived meanwhile)
    /// refunds its retry-budget token — otherwise the remaining backlog
    /// could starve with no completions left to mint budget.
    retried: bool,
}

#[derive(Debug)]
struct L1Waiter {
    warp: WarpId,
    sector_vas: Vec<VirtAddr>,
}

#[derive(Debug, Clone, Copy)]
struct DataAccess {
    warp: WarpId,
    pa: swgpu_types::PhysAddr,
    /// See `TlbLookup::retried` — same budget-refund rule on L1D hits.
    retried: bool,
}

/// One streaming multiprocessor.
///
/// Driven once per cycle by the simulator:
///
/// ```text
/// sm.tick(now, &mut source, &mut ids, issue_slot_free);
/// while let Some(vpn) = sm.pop_l2_tlb_request() { /* → shared L2 TLB */ }
/// while let Some(req) = sm.pop_mem_request()    { /* → shared L2D   */ }
/// // and asynchronously:
/// sm.on_translation(now, vpn, Some(pfn));
/// sm.on_mem_response(now, mem_req);
/// ```
#[derive(Debug)]
pub struct Sm {
    cfg: SmConfig,
    warps: Vec<Warp>,
    sched_ptr: usize,
    // State census kept incrementally so a fully-stalled cycle costs O(1):
    ready_count: usize,
    mem_count: usize,
    compute_count: usize,
    finished_count: usize,
    compute_wake_q: DelayQueue<usize>,
    l1_tlb: Tlb,
    l1_mshr: TlbMshr<L1Waiter>,
    l1d: Cache,
    tlb_lookup_q: DelayQueue<TlbLookup>,
    tlb_retry_q: VecDeque<TlbLookup>,
    // Lookups rejected on L1-MSHR saturation are re-attempted only as
    // capacity frees (2 per resolved VPN), keeping saturated cycles O(1).
    tlb_retry_budget: usize,
    data_issue_q: DelayQueue<DataAccess>,
    data_retry_q: VecDeque<DataAccess>,
    data_retry_budget: usize,
    l2_tlb_out: VecDeque<(Vpn, WarpId)>,
    mem_out: VecDeque<MemReq>,
    mem_owner: HashMap<MemReqId, WarpId>,
    stats: SmStats,
    /// Cycle of the most recent user-instruction issue — per-tenant
    /// runtime is the max of this over the tenant's SMs. Updated only at
    /// issue points, so dense and event-scheduled kernels agree exactly.
    last_issue_cycle: Cycle,
}

impl Sm {
    /// Builds an SM from its configuration.
    pub fn new(cfg: SmConfig) -> Self {
        let warps: Vec<Warp> = (0..cfg.max_warps)
            .map(|_| Warp {
                state: WarpState::Ready,
                pending_xlat: 0,
                pending_data: 0,
            })
            .collect();
        Self {
            l1_tlb: Tlb::new(cfg.l1_tlb.clone()),
            l1_mshr: TlbMshr::new(cfg.l1_mshr),
            l1d: Cache::new(cfg.l1d.clone()),
            ready_count: warps.len(),
            mem_count: 0,
            compute_count: 0,
            finished_count: 0,
            compute_wake_q: DelayQueue::new(),
            warps,
            sched_ptr: 0,
            tlb_lookup_q: DelayQueue::new(),
            tlb_retry_q: VecDeque::new(),
            tlb_retry_budget: 0,
            data_issue_q: DelayQueue::new(),
            data_retry_q: VecDeque::new(),
            data_retry_budget: 0,
            l2_tlb_out: VecDeque::new(),
            mem_out: VecDeque::new(),
            mem_owner: HashMap::new(),
            stats: SmStats::default(),
            last_issue_cycle: Cycle::ZERO,
            cfg,
        }
    }

    /// This SM's id.
    pub fn id(&self) -> SmId {
        self.cfg.id
    }

    /// The address space this SM is bound to.
    pub fn asid(&self) -> Asid {
        self.cfg.asid
    }

    /// Cycle of the most recent user-instruction issue (zero if nothing
    /// issued yet).
    pub fn last_issue_cycle(&self) -> Cycle {
        self.last_issue_cycle
    }

    /// Scheduler/issue statistics.
    pub fn stats(&self) -> SmStats {
        self.stats
    }

    /// L1 TLB statistics.
    pub fn l1_tlb_stats(&self) -> TlbStats {
        self.l1_tlb.stats()
    }

    /// L1 data cache statistics.
    pub fn l1d_stats(&self) -> CacheStats {
        self.l1d.stats()
    }

    /// Whether every warp has retired and all in-flight work has drained.
    pub fn is_done(&self) -> bool {
        self.finished_count == self.warps.len()
            && self.tlb_lookup_q.is_empty()
            && self.tlb_retry_q.is_empty()
            && self.data_issue_q.is_empty()
            && self.data_retry_q.is_empty()
            && self.mem_owner.is_empty()
    }

    /// Advances the SM one cycle. `issue_slot_free == false` means a PW
    /// Warp (highest priority) consumed this cycle's issue slot.
    pub fn tick(
        &mut self,
        now: Cycle,
        source: &mut dyn InstrSource,
        ids: &mut IdGen,
        issue_slot_free: bool,
    ) {
        self.wake_compute_warps(now);
        self.pump_tlb_lookups(now);
        self.pump_l1d(now, ids);
        self.issue(now, source, issue_slot_free);
        // Export L1D fills that became ready this cycle.
        while let Some(fill) = self.l1d.pop_fill_request(now) {
            self.mem_out.push_back(fill);
        }
    }

    fn wake_compute_warps(&mut self, now: Cycle) {
        while let Some(idx) = self.compute_wake_q.pop_ready(now) {
            debug_assert!(matches!(self.warps[idx].state, WarpState::Compute(_)));
            self.warps[idx].state = WarpState::Ready;
            self.compute_count -= 1;
            self.ready_count += 1;
        }
    }

    fn pump_tlb_lookups(&mut self, now: Cycle) {
        // Budgeted retries first (they have been waiting longest), then
        // new lookups.
        let n = self.tlb_retry_budget.min(self.tlb_retry_q.len());
        self.tlb_retry_budget -= n;
        let mut work: Vec<TlbLookup> = self.tlb_retry_q.drain(..n).collect();
        while let Some(lk) = self.tlb_lookup_q.pop_ready(now) {
            work.push(lk);
        }
        for lk in work {
            self.process_lookup(now, lk);
        }
    }

    fn process_lookup(&mut self, now: Cycle, lk: TlbLookup) {
        if let Some(pfn) = self.l1_tlb.lookup(self.cfg.asid, lk.vpn) {
            if lk.retried {
                // The hit consumed no MSHR capacity: refund the token.
                self.tlb_retry_budget += 1;
            }
            self.complete_translation(now, lk.warp, lk.vpn, pfn, lk.sector_vas);
            return;
        }
        match self.l1_mshr.allocate(
            self.cfg.asid,
            lk.vpn,
            L1Waiter {
                warp: lk.warp,
                sector_vas: lk.sector_vas.clone(),
            },
        ) {
            MshrOutcome::Allocated => self.l2_tlb_out.push_back((lk.vpn, lk.warp)),
            MshrOutcome::Merged => {}
            MshrOutcome::Full => {
                self.stats.l1_mshr_failures += 1;
                self.tlb_retry_q.push_back(TlbLookup {
                    retried: true,
                    ..lk
                });
            }
        }
    }

    fn complete_translation(
        &mut self,
        now: Cycle,
        warp: WarpId,
        vpn: Vpn,
        pfn: Pfn,
        sector_vas: Vec<VirtAddr>,
    ) {
        let w = &mut self.warps[warp.index()];
        w.pending_xlat -= 1;
        for (i, va) in sector_vas.into_iter().enumerate() {
            debug_assert_eq!(self.cfg.page_size.vpn_of(va), vpn);
            let pa = self.cfg.page_size.translate(va, pfn);
            // One data access issues per cycle (LSU port serialization).
            self.data_issue_q.push(
                now + 1 + i as u64,
                DataAccess {
                    warp,
                    pa,
                    retried: false,
                },
            );
        }
    }

    fn pump_l1d(&mut self, now: Cycle, ids: &mut IdGen) {
        // Complete data accesses.
        while let Some(resp) = self.l1d.pop_response(now) {
            let warp = self
                .mem_owner
                .remove(&resp.id)
                .expect("L1D response for unknown request");
            let w = &mut self.warps[warp.index()];
            w.pending_data -= 1;
            self.maybe_unblock(warp);
        }
        // Issue new / retried accesses. Retries are budgeted by completed
        // fills (each frees an L1D MSHR), keeping saturated cycles O(1).
        let n = self.data_retry_budget.min(self.data_retry_q.len());
        self.data_retry_budget -= n;
        let mut work: Vec<DataAccess> = self.data_retry_q.drain(..n).collect();
        while let Some(da) = self.data_issue_q.pop_ready(now) {
            work.push(da);
        }
        for da in work {
            let id = ids.next_mem();
            let req = MemReq::new(id, da.pa, AccessKind::Data);
            match self.l1d.access(now, req) {
                AccessOutcome::MshrFull => self.data_retry_q.push_back(DataAccess {
                    retried: true,
                    ..da
                }),
                outcome => {
                    if da.retried && outcome == AccessOutcome::Hit {
                        // Hit consumed no MSHR: refund the retry token.
                        self.data_retry_budget += 1;
                    }
                    self.mem_owner.insert(id, da.warp);
                }
            }
        }
    }

    fn maybe_unblock(&mut self, warp: WarpId) {
        let w = &mut self.warps[warp.index()];
        if w.state == WarpState::Mem && w.pending_xlat == 0 && w.pending_data == 0 {
            w.state = WarpState::Ready;
            self.mem_count -= 1;
            self.ready_count += 1;
        }
    }

    fn issue(&mut self, now: Cycle, source: &mut dyn InstrSource, issue_slot_free: bool) {
        if !issue_slot_free {
            self.stats.pw_issue_cycles += 1;
            return;
        }
        let n = self.warps.len();
        if self.ready_count > 0 {
            for step in 0..n {
                let idx = (self.sched_ptr + step) % n;
                if self.warps[idx].state != WarpState::Ready {
                    continue;
                }
                match source.next_instr(self.cfg.id, WarpId::new(idx as u16)) {
                    None => {
                        self.warps[idx].state = WarpState::Finished;
                        self.ready_count -= 1;
                        self.finished_count += 1;
                        continue;
                    }
                    Some(WarpInstr::Compute { cycles }) => {
                        let until = now + u64::from(cycles.max(1));
                        self.warps[idx].state = WarpState::Compute(until);
                        self.compute_wake_q.push(until, idx);
                        self.ready_count -= 1;
                        self.compute_count += 1;
                        self.stats.issued_cycles += 1;
                        self.stats.instructions += 1;
                        self.last_issue_cycle = now;
                        self.sched_ptr = (idx + 1) % n;
                        return;
                    }
                    Some(WarpInstr::Load { addrs }) => {
                        assert!(!addrs.is_empty(), "load instruction with no lanes");
                        let groups = coalesce(&addrs, self.cfg.page_size, self.cfg.sector_bytes);
                        let w = &mut self.warps[idx];
                        w.state = WarpState::Mem;
                        w.pending_xlat = groups.len();
                        w.pending_data = groups.iter().map(|g| g.sector_vas.len()).sum();
                        self.ready_count -= 1;
                        self.mem_count += 1;
                        for (i, g) in groups.into_iter().enumerate() {
                            // One TLB port: lookups for divergent pages
                            // serialize.
                            self.tlb_lookup_q.push(
                                now + self.cfg.l1_tlb_latency + i as u64,
                                TlbLookup {
                                    warp: WarpId::new(idx as u16),
                                    vpn: g.vpn,
                                    sector_vas: g.sector_vas,
                                    retried: false,
                                },
                            );
                        }
                        self.stats.issued_cycles += 1;
                        self.stats.instructions += 1;
                        self.stats.loads += 1;
                        self.last_issue_cycle = now;
                        self.sched_ptr = (idx + 1) % n;
                        return;
                    }
                }
            }
        }
        // No instruction issued: classify the stall in O(1).
        if self.mem_count > 0 {
            self.stats.mem_stall_cycles += 1;
        } else if self.compute_count > 0 {
            self.stats.scoreboard_stall_cycles += 1;
        } else {
            self.stats.idle_cycles += 1;
        }
    }

    /// Next L1-TLB-missed VPN destined for the shared L2 TLB (with the
    /// warp whose lookup allocated the miss — the owner hint consumed by
    /// warp-aware PWB scheduling). Each popped entry represents exactly
    /// one in-flight L1 MSHR entry.
    pub fn pop_l2_tlb_request(&mut self) -> Option<(Vpn, WarpId)> {
        self.l2_tlb_out.pop_front()
    }

    /// Next L1D fill request destined for the shared L2 data cache.
    pub fn pop_mem_request(&mut self) -> Option<MemReq> {
        self.mem_out.pop_front()
    }

    /// Delivers a translation from the shared L2 TLB / page walk system.
    /// `pfn == None` is a fault: the waiting lane accesses are dropped and
    /// counted in [`SmStats::xlat_faults`].
    pub fn on_translation(&mut self, now: Cycle, vpn: Vpn, pfn: Option<Pfn>) {
        self.tlb_retry_budget = self.tlb_retry_budget.saturating_add(2);
        let waiters = self.l1_mshr.resolve(self.cfg.asid, vpn);
        match pfn {
            Some(pfn) => {
                self.l1_tlb.fill(self.cfg.asid, vpn, pfn);
                for wtr in waiters {
                    self.complete_translation(now, wtr.warp, vpn, pfn, wtr.sector_vas);
                }
            }
            None => {
                for wtr in waiters {
                    self.stats.xlat_faults += 1;
                    let w = &mut self.warps[wtr.warp.index()];
                    w.pending_xlat -= 1;
                    w.pending_data -= wtr.sector_vas.len();
                    self.maybe_unblock(wtr.warp);
                }
            }
        }
    }

    /// Single-page TLB shootdown from the memory manager: drops the L1
    /// TLB's cached translation for an evicted page. In-flight L1-MSHR
    /// misses are untouched — their walk completes against the updated
    /// page table.
    pub fn invalidate_translation(&mut self, vpn: Vpn) -> usize {
        self.l1_tlb.invalidate(self.cfg.asid, vpn)
    }

    /// Delivers a completed L2D fill for an L1D miss this SM issued.
    pub fn on_mem_response(&mut self, now: Cycle, req: MemReq) {
        self.l1d.complete_fill(now, req);
        self.data_retry_budget = self.data_retry_budget.saturating_add(2);
    }

    /// Number of warps not yet finished.
    pub fn live_warps(&self) -> usize {
        self.warps.len() - self.finished_count
    }

    /// Whether the SM currently cannot issue any user instruction (all
    /// live warps blocked) — the stall hint consumed by the stall-aware
    /// Request Distributor policy.
    pub fn is_stalled(&self) -> bool {
        self.ready_count == 0 && self.finished_count < self.warps.len()
    }

    /// Accounts `n` cycles the event kernel skipped over without ticking
    /// this SM. During such a gap the SM provably cannot issue
    /// (`ready_count == 0`, else it would have demanded a wake) and its
    /// warp census is frozen (state changes only at events), so the dense
    /// loop would have charged every one of those cycles to exactly the
    /// class [`Sm::issue`] picks from the same census — including
    /// `idle_cycles` on fully-retired SMs, which dense keeps ticking.
    pub fn account_quiet_cycles(&mut self, n: u64) {
        debug_assert_eq!(self.ready_count, 0, "skipped over an issueable SM");
        if self.mem_count > 0 {
            self.stats.mem_stall_cycles += n;
        } else if self.compute_count > 0 {
            self.stats.scoreboard_stall_cycles += n;
        } else {
            self.stats.idle_cycles += n;
        }
    }
}

impl swgpu_types::Component for Sm {
    /// Immediate work — an issueable warp, a budgeted retry, or an
    /// un-drained outbound request — demands the very next cycle (a ready
    /// warp also covers retirement scans: warps retire on their first
    /// issue attempt). Otherwise the SM sleeps until its earliest timed
    /// wake: a compute completion, a serialized TLB lookup or LSU data
    /// access becoming ready, or L1D hit/fill timing. Warps parked on the
    /// L2 TLB or L2D (`l1_mshr` / `mem_owner`) are revived by those
    /// components' events.
    fn next_event(&self) -> Option<Cycle> {
        if self.ready_count > 0
            || (!self.tlb_retry_q.is_empty() && self.tlb_retry_budget > 0)
            || (!self.data_retry_q.is_empty() && self.data_retry_budget > 0)
            || !self.l2_tlb_out.is_empty()
            || !self.mem_out.is_empty()
        {
            return Some(Cycle::ZERO);
        }
        let mut next: Option<Cycle> = None;
        for cand in [
            self.compute_wake_q.next_ready(),
            self.tlb_lookup_q.next_ready(),
            self.data_issue_q.next_ready(),
            swgpu_types::Component::next_event(&self.l1d),
        ] {
            next = match (next, cand) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        next
    }

    fn is_idle(&self) -> bool {
        self.is_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::SliceSource;

    fn small_sm() -> Sm {
        let mut cfg = SmConfig::new(SmId::new(0));
        cfg.max_warps = 2;
        Sm::new(cfg)
    }

    /// Runs the SM standalone, answering every outbound request after a
    /// fixed latency with an identity-ish translation (pfn = vpn + 1000)
    /// and instant memory.
    fn run_standalone(sm: &mut Sm, src: &mut SliceSource, max_cycles: u64) -> u64 {
        let mut ids = IdGen::new();
        let mut xlat_q: DelayQueue<Vpn> = DelayQueue::new();
        let mut mem_q: DelayQueue<MemReq> = DelayQueue::new();
        for c in 0..max_cycles {
            let now = Cycle::new(c);
            sm.tick(now, src, &mut ids, true);
            while let Some((vpn, _warp)) = sm.pop_l2_tlb_request() {
                xlat_q.push(now + 80, vpn);
            }
            while let Some(req) = sm.pop_mem_request() {
                mem_q.push(now + 100, req);
            }
            while let Some(vpn) = xlat_q.pop_ready(now) {
                sm.on_translation(now, vpn, Some(Pfn::new(vpn.value() + 1000)));
            }
            while let Some(req) = mem_q.pop_ready(now) {
                sm.on_mem_response(now, req);
            }
            if sm.is_done() {
                return c;
            }
        }
        panic!("SM did not finish in {max_cycles} cycles");
    }

    #[test]
    fn compute_only_warp_finishes() {
        let mut sm = small_sm();
        let mut src = SliceSource::new();
        src.assign(
            SmId::new(0),
            WarpId::new(0),
            vec![
                WarpInstr::Compute { cycles: 5 },
                WarpInstr::Compute { cycles: 5 },
            ],
        );
        let cycles = run_standalone(&mut sm, &mut src, 1000);
        assert!(cycles >= 10, "two dependent 5-cycle instructions");
        assert_eq!(sm.stats().instructions, 2);
        assert_eq!(sm.stats().loads, 0);
    }

    #[test]
    fn load_round_trips_through_tlb_and_cache() {
        let mut sm = small_sm();
        let mut src = SliceSource::new();
        src.assign(
            SmId::new(0),
            WarpId::new(0),
            vec![WarpInstr::coalesced_load(VirtAddr::new(0x2_0000))],
        );
        run_standalone(&mut sm, &mut src, 5000);
        let tlb = sm.l1_tlb_stats();
        assert_eq!(tlb.misses, 1, "cold TLB miss");
        // 32 lanes x 4B span one 128B line = four 32B sectors, each a
        // distinct sector miss in the cold L1D.
        assert_eq!(sm.l1d_stats().misses, 4);
    }

    #[test]
    fn second_load_hits_l1_tlb() {
        let mut sm = small_sm();
        let mut src = SliceSource::new();
        src.assign(
            SmId::new(0),
            WarpId::new(0),
            vec![
                WarpInstr::coalesced_load(VirtAddr::new(0x2_0000)),
                WarpInstr::coalesced_load(VirtAddr::new(0x2_0100)),
            ],
        );
        run_standalone(&mut sm, &mut src, 5000);
        let tlb = sm.l1_tlb_stats();
        assert_eq!(tlb.misses, 1);
        assert_eq!(tlb.hits, 1);
    }

    #[test]
    fn divergent_load_generates_many_l2_requests() {
        let mut sm = small_sm();
        let mut src = SliceSource::new();
        let addrs: Vec<_> = (0..32u64).map(|i| VirtAddr::new(i * 0x1_0000)).collect();
        src.assign(
            SmId::new(0),
            WarpId::new(0),
            vec![WarpInstr::Load { addrs }],
        );
        run_standalone(&mut sm, &mut src, 10_000);
        assert_eq!(sm.l1_tlb_stats().misses, 32);
    }

    #[test]
    fn stall_classification_counts_memory_waits() {
        let mut sm = small_sm();
        let mut src = SliceSource::new();
        src.assign(
            SmId::new(0),
            WarpId::new(0),
            vec![WarpInstr::coalesced_load(VirtAddr::new(0))],
        );
        run_standalone(&mut sm, &mut src, 5000);
        let s = sm.stats();
        assert!(s.mem_stall_cycles > 0, "waited on the load");
        assert!(s.issued_cycles >= 1);
    }

    #[test]
    fn pw_warp_slot_preempts_user_issue() {
        let mut sm = small_sm();
        let mut src = SliceSource::new();
        src.assign(
            SmId::new(0),
            WarpId::new(0),
            vec![WarpInstr::Compute { cycles: 1 }],
        );
        let mut ids = IdGen::new();
        sm.tick(Cycle::ZERO, &mut src, &mut ids, false);
        assert_eq!(sm.stats().pw_issue_cycles, 1);
        assert_eq!(sm.stats().instructions, 0, "user warp was preempted");
        sm.tick(Cycle::new(1), &mut src, &mut ids, true);
        assert_eq!(sm.stats().instructions, 1);
    }

    #[test]
    fn translation_fault_drops_accesses_but_unblocks() {
        let mut sm = small_sm();
        let mut src = SliceSource::new();
        src.assign(
            SmId::new(0),
            WarpId::new(0),
            vec![
                WarpInstr::Load {
                    addrs: vec![VirtAddr::new(0x9_0000)],
                },
                WarpInstr::Compute { cycles: 1 },
            ],
        );
        let mut ids = IdGen::new();
        let mut done = false;
        for c in 0..200u64 {
            let now = Cycle::new(c);
            sm.tick(now, &mut src, &mut ids, true);
            while let Some((vpn, _warp)) = sm.pop_l2_tlb_request() {
                sm.on_translation(now, vpn, None); // fault
            }
            if sm.is_done() {
                done = true;
                break;
            }
        }
        assert!(done, "faulting warp must not deadlock");
        assert_eq!(sm.stats().xlat_faults, 1);
        assert_eq!(sm.stats().instructions, 2, "warp continued after fault");
    }

    #[test]
    fn two_warps_interleave() {
        let mut sm = small_sm();
        let mut src = SliceSource::new();
        for w in 0..2u16 {
            src.assign(
                SmId::new(0),
                WarpId::new(w),
                vec![WarpInstr::Compute { cycles: 50 }; 2],
            );
        }
        let cycles = run_standalone(&mut sm, &mut src, 1000);
        // With interleaving, 2 warps x 2 x 50-cycle instructions overlap:
        // well under the serial 200 cycles.
        assert!(cycles < 150, "took {cycles}");
    }

    #[test]
    fn is_done_initially_false_until_retired() {
        let mut sm = small_sm();
        assert!(!sm.is_done(), "warps not yet retired");
        let mut src = SliceSource::new(); // empty: warps retire on first issue
        let mut ids = IdGen::new();
        sm.tick(Cycle::ZERO, &mut src, &mut ids, true);
        assert!(sm.is_done());
        assert_eq!(sm.stats().idle_cycles, 1);
    }
}
