//! Streaming Multiprocessor (SM) model.
//!
//! The paper's results live entirely in the memory/translation system, so
//! this SM abstracts the compute pipeline to its observable behaviour at
//! the memory boundary:
//!
//! * up to 48 resident warps per SM (Table 3), each executing a stream of
//!   [`WarpInstr`]s supplied by a workload generator;
//! * one instruction issued per SM per cycle, picked by a loose
//!   round-robin scheduler; a cycle with no eligible warp is classified
//!   as a *memory stall*, *scoreboard stall* or *idle* cycle — the
//!   taxonomy behind Figure 8;
//! * per-warp-instruction address coalescing: lane addresses collapse to
//!   unique pages (translation requests) and unique 32-byte sectors
//!   (memory requests), so a regular warp costs one lookup and an
//!   irregular warp costs up to 32 — the divergence effect of Section 2.2;
//! * a private L1 TLB (32 entries, 10 cycles, 32 MSHRs x 192 merges) and
//!   a private L1D cache; L1 misses exit the SM toward the shared L2 TLB /
//!   L2 data cache.
//!
//! The SM also exposes the issue-port hook the SoftWalker PW Warp uses:
//! when a PW Warp instruction wins the (highest-priority) issue slot, the
//! SM is ticked with `issue_slot_free == false` and user warps wait —
//! modelling the paper's "leveraging idle GPU cycles" trade-off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod instr;
mod sm;

pub use instr::{coalesce, CoalescedAccess, InstrSource, SliceSource, WarpInstr};
pub use sm::{Sm, SmConfig, SmStats};
