//! Warp instructions, instruction sources and the memory coalescer.

use std::collections::BTreeMap;
use swgpu_types::{PageSize, SmId, VirtAddr, Vpn, WarpId, LANES_PER_WARP};

/// One warp-wide instruction as seen by the SM model.
///
/// The compute pipeline is abstracted: a [`WarpInstr::Compute`] occupies
/// the warp's scoreboard for a given number of cycles (modelling issue
/// plus dependency latency of arithmetic work), while a
/// [`WarpInstr::Load`] is a global memory access with one virtual address
/// per active lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarpInstr {
    /// Arithmetic work: the warp is scoreboard-blocked for `cycles`.
    Compute {
        /// Dependency latency in cycles (≥ 1).
        cycles: u32,
    },
    /// A global load with up to 32 active-lane addresses.
    Load {
        /// Per-active-lane virtual addresses (1..=32 entries).
        addrs: Vec<VirtAddr>,
    },
}

impl WarpInstr {
    /// Convenience constructor for a fully-active coalesced load where
    /// every lane reads consecutive 4-byte words from `base`.
    pub fn coalesced_load(base: VirtAddr) -> Self {
        WarpInstr::Load {
            addrs: (0..LANES_PER_WARP as u64).map(|i| base + i * 4).collect(),
        }
    }

    /// Whether this is a memory instruction.
    pub fn is_load(&self) -> bool {
        matches!(self, WarpInstr::Load { .. })
    }
}

/// Supplies instruction streams to warps. Implemented by the workload
/// generators; the simulator pulls the next instruction when a warp is
/// ready. Returning `None` retires the warp.
pub trait InstrSource {
    /// Next instruction for `(sm, warp)`, or `None` when the warp's work
    /// is exhausted.
    fn next_instr(&mut self, sm: SmId, warp: WarpId) -> Option<WarpInstr>;

    /// Non-consuming look-ahead for translation prefetching: the pages
    /// the next up-to-`lookahead` *load* instructions of `(sm, warp)`
    /// will touch, in stream order, without advancing the stream. The
    /// default (no look-ahead) keeps prefetching inert for sources that
    /// cannot predict their future.
    fn peek_load_vpns(&self, _sm: SmId, _warp: WarpId, _lookahead: u32) -> Vec<Vpn> {
        Vec::new()
    }
}

/// An [`InstrSource`] that replays a fixed per-warp instruction list —
/// used by unit tests and the microbenchmark harness.
#[derive(Debug, Default)]
pub struct SliceSource {
    streams: BTreeMap<(SmId, WarpId), std::vec::IntoIter<WarpInstr>>,
}

impl SliceSource {
    /// Creates an empty source (every warp retires immediately).
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns an instruction list to one warp.
    pub fn assign(&mut self, sm: SmId, warp: WarpId, instrs: Vec<WarpInstr>) {
        self.streams.insert((sm, warp), instrs.into_iter());
    }
}

impl InstrSource for SliceSource {
    fn next_instr(&mut self, sm: SmId, warp: WarpId) -> Option<WarpInstr> {
        self.streams.get_mut(&(sm, warp))?.next()
    }
}

/// The result of coalescing one warp load: the distinct pages that need
/// translation, each with the distinct sector-aligned virtual addresses
/// that will be fetched from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalescedAccess {
    /// Page needing translation.
    pub vpn: Vpn,
    /// Sector-aligned virtual addresses within that page (deduplicated).
    pub sector_vas: Vec<VirtAddr>,
}

/// Coalesces a warp's lane addresses into per-page sector lists.
///
/// A fully coalesced warp (all lanes in one 128-byte line) produces one
/// page with 1–4 sectors; a fully divergent warp produces up to 32 pages.
/// Pages come out in ascending VPN order and sectors in ascending address
/// order, keeping the simulation deterministic.
///
/// # Example
///
/// ```
/// use swgpu_sm::coalesce;
/// use swgpu_types::{PageSize, VirtAddr};
///
/// let lanes = vec![VirtAddr::new(0), VirtAddr::new(8), VirtAddr::new(0x1_0000)];
/// let groups = coalesce(&lanes, PageSize::Size64K, 32);
/// assert_eq!(groups.len(), 2); // two distinct pages
/// assert_eq!(groups[0].sector_vas.len(), 1); // lanes 0 and 8 share a sector
/// ```
pub fn coalesce(addrs: &[VirtAddr], page: PageSize, sector_bytes: u64) -> Vec<CoalescedAccess> {
    let mut pages: BTreeMap<Vpn, Vec<VirtAddr>> = BTreeMap::new();
    for &va in addrs {
        let vpn = page.vpn_of(va);
        let sector = va.align_down(sector_bytes);
        let sectors = pages.entry(vpn).or_default();
        if let Err(pos) = sectors.binary_search(&sector) {
            sectors.insert(pos, sector);
        }
    }
    pages
        .into_iter()
        .map(|(vpn, sector_vas)| CoalescedAccess { vpn, sector_vas })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_warp_is_one_page_one_or_few_sectors() {
        let instr = WarpInstr::coalesced_load(VirtAddr::new(0x4_0000));
        let WarpInstr::Load { addrs } = instr else {
            panic!("expected load");
        };
        let groups = coalesce(&addrs, PageSize::Size64K, 32);
        assert_eq!(groups.len(), 1);
        // 32 lanes x 4B = 128B = 4 sectors of 32B.
        assert_eq!(groups[0].sector_vas.len(), 4);
    }

    #[test]
    fn divergent_warp_hits_many_pages() {
        let addrs: Vec<_> = (0..32u64)
            .map(|i| VirtAddr::new(i * 0x1_0000)) // one page each
            .collect();
        let groups = coalesce(&addrs, PageSize::Size64K, 32);
        assert_eq!(groups.len(), 32);
        for g in &groups {
            assert_eq!(g.sector_vas.len(), 1);
        }
    }

    #[test]
    fn duplicate_lanes_deduplicate() {
        let addrs = vec![VirtAddr::new(100), VirtAddr::new(100), VirtAddr::new(101)];
        let groups = coalesce(&addrs, PageSize::Size64K, 32);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].sector_vas.len(), 1);
    }

    #[test]
    fn output_is_sorted() {
        let addrs = vec![
            VirtAddr::new(0x3_0000),
            VirtAddr::new(0x1_0000),
            VirtAddr::new(0x1_0040),
        ];
        let groups = coalesce(&addrs, PageSize::Size64K, 32);
        assert_eq!(groups[0].vpn, Vpn::new(1));
        assert_eq!(groups[1].vpn, Vpn::new(3));
        assert!(groups[0].sector_vas[0] < groups[0].sector_vas[1]);
    }

    #[test]
    fn slice_source_replays_then_retires() {
        let mut src = SliceSource::new();
        src.assign(
            SmId::new(0),
            WarpId::new(1),
            vec![WarpInstr::Compute { cycles: 3 }],
        );
        assert!(src.next_instr(SmId::new(0), WarpId::new(1)).is_some());
        assert!(src.next_instr(SmId::new(0), WarpId::new(1)).is_none());
        assert!(src.next_instr(SmId::new(0), WarpId::new(0)).is_none());
    }

    #[test]
    fn large_pages_coalesce_more() {
        let addrs: Vec<_> = (0..32u64).map(|i| VirtAddr::new(i * 0x1_0000)).collect();
        let groups64k = coalesce(&addrs, PageSize::Size64K, 32);
        let groups2m = coalesce(&addrs, PageSize::Size2M, 32);
        assert_eq!(groups64k.len(), 32);
        assert_eq!(groups2m.len(), 1, "32 x 64KB strides fit in one 2MB page");
    }
}
