//! SoftPWB: the per-SM software page walk buffer and its status bitmap.
//!
//! The paper carves the SoftPWB out of L1D/shared memory (96 bits per
//! entry: a 33-bit VPN, a 31-bit page-table base PFN from the PWC and a
//! 2-bit level) and tracks each entry with a 2-bit status in the SoftWalker
//! Controller's *SoftPWB Status Bitmap*: invalid → valid → processing →
//! invalid (Figure 11).

use crate::pw_warp::SwWalkRequest;

/// The 2-bit per-entry state from the paper's SoftPWB Status Bitmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotStatus {
    /// No request assigned.
    Invalid,
    /// Request written by the SoftWalker Controller, awaiting a PW thread.
    Valid,
    /// A PW thread is currently walking this request.
    Processing,
}

/// The per-SM software page walk buffer (32 entries in Table 3).
///
/// # Example
///
/// ```
/// use softwalker::{SoftPwb, SwWalkRequest};
/// use swgpu_types::{Cycle, PhysAddr, Vpn};
///
/// let mut pwb = SoftPwb::new(4);
/// let req = SwWalkRequest::new(Vpn::new(7), Cycle::ZERO, Cycle::ZERO, 4, PhysAddr::new(0x1000));
/// let slot = pwb.insert(req, Cycle::ZERO).expect("slot free");
/// let (taken_slot, taken) = pwb.take_valid().expect("valid entry");
/// assert_eq!(taken_slot, slot);
/// assert_eq!(taken.vpn, Vpn::new(7));
/// pwb.complete(slot);
/// assert_eq!(pwb.free_slots(), 4);
/// ```
#[derive(Debug)]
pub struct SoftPwb {
    slots: Vec<Option<(SwWalkRequest, swgpu_types::Cycle)>>,
    status: Vec<SlotStatus>,
    // Free-list and valid-queue keep every operation O(1); counts are
    // maintained incrementally so status queries are O(1) too.
    free_list: Vec<usize>,
    valid_queue: std::collections::VecDeque<usize>,
    processing: usize,
}

impl SoftPwb {
    /// Creates a buffer with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "SoftPWB needs at least one entry");
        Self {
            slots: vec![None; entries],
            status: vec![SlotStatus::Invalid; entries],
            free_list: (0..entries).rev().collect(),
            valid_queue: std::collections::VecDeque::new(),
            processing: 0,
        }
    }

    /// Total entries.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Entries in the `Invalid` state (accepting new requests).
    pub fn free_slots(&self) -> usize {
        self.free_list.len()
    }

    /// Entries awaiting a PW thread.
    pub fn valid_count(&self) -> usize {
        self.valid_queue.len()
    }

    /// Entries currently being walked.
    pub fn processing_count(&self) -> usize {
        self.processing
    }

    /// Status of one slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn status(&self, slot: usize) -> SlotStatus {
        self.status[slot]
    }

    /// Writes a request into an invalid slot (Figure 11 steps 4-5),
    /// stamping its arrival time. Returns the slot index, or `None` when
    /// the buffer is full (the Request Distributor's per-core counter
    /// should prevent that).
    pub fn insert(&mut self, req: SwWalkRequest, arrival: swgpu_types::Cycle) -> Option<usize> {
        let slot = self.free_list.pop()?;
        self.slots[slot] = Some((req, arrival));
        self.status[slot] = SlotStatus::Valid;
        self.valid_queue.push_back(slot);
        Some(slot)
    }

    /// Hands the oldest valid entry to a PW thread, transitioning it to
    /// `Processing` (Figure 11 step 6). Returns the slot and a copy of
    /// the request with its arrival stamp.
    pub fn take_valid(&mut self) -> Option<(usize, SwWalkRequest)> {
        let slot = self.valid_queue.pop_front()?;
        self.status[slot] = SlotStatus::Processing;
        self.processing += 1;
        let (req, _) = self.slots[slot].expect("valid slot holds a request");
        Some((slot, req))
    }

    /// Arrival time of the request in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty.
    pub fn arrival_of(&self, slot: usize) -> swgpu_types::Cycle {
        self.slots[slot].expect("occupied slot").1
    }

    /// Finishes a walk: `Processing` → `Invalid` (the FL2T completion
    /// path).
    ///
    /// # Panics
    ///
    /// Panics if the slot was not in the `Processing` state — that would
    /// indicate the controller lost track of a walk.
    pub fn complete(&mut self, slot: usize) {
        assert_eq!(
            self.status[slot],
            SlotStatus::Processing,
            "completing a slot that is not processing"
        );
        self.status[slot] = SlotStatus::Invalid;
        self.slots[slot] = None;
        self.processing -= 1;
        self.free_list.push(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swgpu_types::{Cycle, PhysAddr, Vpn};

    fn req(vpn: u64) -> SwWalkRequest {
        SwWalkRequest::new(
            Vpn::new(vpn),
            Cycle::ZERO,
            Cycle::ZERO,
            4,
            PhysAddr::new(0x1000),
        )
    }

    #[test]
    fn lifecycle_invalid_valid_processing_invalid() {
        let mut pwb = SoftPwb::new(2);
        assert_eq!(pwb.free_slots(), 2);
        let s = pwb.insert(req(1), Cycle::new(5)).unwrap();
        assert_eq!(pwb.status(s), SlotStatus::Valid);
        assert_eq!(pwb.arrival_of(s), Cycle::new(5));
        let (s2, r) = pwb.take_valid().unwrap();
        assert_eq!(s, s2);
        assert_eq!(r.vpn, Vpn::new(1));
        assert_eq!(pwb.status(s), SlotStatus::Processing);
        pwb.complete(s);
        assert_eq!(pwb.status(s), SlotStatus::Invalid);
    }

    #[test]
    fn insert_fails_when_full() {
        let mut pwb = SoftPwb::new(1);
        pwb.insert(req(1), Cycle::ZERO).unwrap();
        assert!(pwb.insert(req(2), Cycle::ZERO).is_none());
    }

    #[test]
    fn take_valid_skips_processing() {
        let mut pwb = SoftPwb::new(3);
        pwb.insert(req(1), Cycle::ZERO).unwrap();
        pwb.insert(req(2), Cycle::ZERO).unwrap();
        let (a, ra) = pwb.take_valid().unwrap();
        let (b, rb) = pwb.take_valid().unwrap();
        assert_ne!(a, b);
        assert_ne!(ra.vpn, rb.vpn);
        assert!(pwb.take_valid().is_none());
        assert_eq!(pwb.processing_count(), 2);
    }

    #[test]
    #[should_panic(expected = "not processing")]
    fn completing_idle_slot_panics() {
        let mut pwb = SoftPwb::new(1);
        pwb.complete(0);
    }

    #[test]
    fn counts_are_consistent() {
        let mut pwb = SoftPwb::new(4);
        pwb.insert(req(1), Cycle::ZERO);
        pwb.insert(req(2), Cycle::ZERO);
        pwb.take_valid();
        assert_eq!(pwb.free_slots(), 2);
        assert_eq!(pwb.valid_count(), 1);
        assert_eq!(pwb.processing_count(), 1);
    }
}
