//! The Fault Buffer fed by the `FFB` instruction.
//!
//! When a PW thread loads an invalid PTE it executes `FFB`, logging the
//! faulting VPN (and the level at which the walk died) for the UVM driver.
//! From the driver's perspective this is indistinguishable from a fault
//! reported by a hardware page walker (§5.5), so the existing demand-paging
//! protocol — allocate/migrate the page, install the PTE, replay — works
//! unchanged.

use swgpu_types::{Cycle, Vpn};

/// One logged page fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// The faulting virtual page.
    pub vpn: Vpn,
    /// Radix level whose entry was invalid (1 = leaf PTE).
    pub level: u8,
    /// Cycle at which `FFB` executed.
    pub at: Cycle,
}

/// An append-only fault log with a read-and-clear drain, as the UVM driver
/// consumes it.
///
/// # Example
///
/// ```
/// use softwalker::{FaultBuffer, FaultRecord};
/// use swgpu_types::{Cycle, Vpn};
///
/// let mut fb = FaultBuffer::new();
/// fb.record(FaultRecord { vpn: Vpn::new(9), level: 1, at: Cycle::ZERO });
/// assert_eq!(fb.len(), 1);
/// let drained = fb.drain();
/// assert_eq!(drained[0].vpn, Vpn::new(9));
/// assert!(fb.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct FaultBuffer {
    records: Vec<FaultRecord>,
}

impl FaultBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a fault record (the `FFB` instruction).
    pub fn record(&mut self, rec: FaultRecord) {
        self.records.push(rec);
    }

    /// Number of unconsumed faults.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no faults are pending.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Reads and clears the log, in arrival order.
    pub fn drain(&mut self) -> Vec<FaultRecord> {
        std::mem::take(&mut self.records)
    }

    /// Iterates pending faults without consuming them.
    pub fn iter(&self) -> impl Iterator<Item = &FaultRecord> {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut fb = FaultBuffer::new();
        for i in 0..3 {
            fb.record(FaultRecord {
                vpn: Vpn::new(i),
                level: 1,
                at: Cycle::new(i),
            });
        }
        let drained = fb.drain();
        assert_eq!(drained.len(), 3);
        assert!(drained.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn drain_clears() {
        let mut fb = FaultBuffer::new();
        fb.record(FaultRecord {
            vpn: Vpn::new(1),
            level: 2,
            at: Cycle::ZERO,
        });
        assert!(!fb.is_empty());
        fb.drain();
        assert!(fb.is_empty());
        assert_eq!(fb.drain().len(), 0);
    }

    #[test]
    fn iter_does_not_consume() {
        let mut fb = FaultBuffer::new();
        fb.record(FaultRecord {
            vpn: Vpn::new(1),
            level: 1,
            at: Cycle::ZERO,
        });
        assert_eq!(fb.iter().count(), 1);
        assert_eq!(fb.len(), 1);
    }
}
