//! The Fault Buffer fed by the `FFB` instruction.
//!
//! When a PW thread loads an invalid PTE it executes `FFB`, logging the
//! faulting VPN (and the level at which the walk died) for the UVM driver.
//! From the driver's perspective this is indistinguishable from a fault
//! reported by a hardware page walker (§5.5), so the existing demand-paging
//! protocol — allocate/migrate the page, install the PTE, replay — works
//! unchanged.
//!
//! The buffer is a bounded hardware structure: under a pathological fault
//! storm it drops its *oldest* records rather than growing without bound,
//! counting each eviction. The driver's replay protocol does not depend on
//! the records themselves (escalated translations are routed to the driver
//! directly), so a dropped record loses observability, never a translation.

use std::collections::VecDeque;
use swgpu_types::{Asid, Cycle, Vpn};

/// One logged page fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Address space the fault belongs to — the driver routes the record
    /// to that tenant's memory manager.
    pub asid: Asid,
    /// The faulting virtual page.
    pub vpn: Vpn,
    /// Radix level whose entry was invalid (1 = leaf PTE).
    pub level: u8,
    /// Cycle at which `FFB` executed.
    pub at: Cycle,
}

/// A bounded fault log with a read-and-clear drain, as the UVM driver
/// consumes it. When full, the oldest record is dropped to make room
/// (and counted).
///
/// # Example
///
/// ```
/// use softwalker::{FaultBuffer, FaultRecord};
/// use swgpu_types::{Asid, Cycle, Vpn};
///
/// let mut fb = FaultBuffer::new();
/// fb.record(FaultRecord { asid: Asid::ZERO, vpn: Vpn::new(9), level: 1, at: Cycle::ZERO });
/// assert_eq!(fb.len(), 1);
/// let drained = fb.drain();
/// assert_eq!(drained[0].vpn, Vpn::new(9));
/// assert!(fb.is_empty());
/// ```
#[derive(Debug)]
pub struct FaultBuffer {
    records: VecDeque<FaultRecord>,
    capacity: usize,
    overflow_dropped: u64,
}

impl Default for FaultBuffer {
    fn default() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

impl FaultBuffer {
    /// Default capacity: matches the SoftPWB sizing (one slot per
    /// potentially-faulting in-flight walk, with headroom).
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates an empty buffer with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer bounded at `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a fault buffer that can hold nothing
    /// would silently discard every record).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "fault buffer capacity must be positive");
        Self {
            records: VecDeque::new(),
            capacity,
            overflow_dropped: 0,
        }
    }

    /// Maximum records held before drop-oldest kicks in.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records evicted because the buffer was full.
    pub fn overflow_dropped(&self) -> u64 {
        self.overflow_dropped
    }

    /// Appends a fault record (the `FFB` instruction), evicting the
    /// oldest record when at capacity.
    pub fn record(&mut self, rec: FaultRecord) {
        if self.records.len() >= self.capacity {
            self.records.pop_front();
            self.overflow_dropped += 1;
        }
        self.records.push_back(rec);
    }

    /// Number of unconsumed faults.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no faults are pending.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Reads and clears the log, in arrival order.
    pub fn drain(&mut self) -> Vec<FaultRecord> {
        self.records.drain(..).collect()
    }

    /// Iterates pending faults without consuming them.
    pub fn iter(&self) -> impl Iterator<Item = &FaultRecord> {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut fb = FaultBuffer::new();
        for i in 0..3 {
            fb.record(FaultRecord {
                asid: Asid::ZERO,
                vpn: Vpn::new(i),
                level: 1,
                at: Cycle::new(i),
            });
        }
        let drained = fb.drain();
        assert_eq!(drained.len(), 3);
        assert!(drained.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn drain_clears() {
        let mut fb = FaultBuffer::new();
        fb.record(FaultRecord {
            asid: Asid::ZERO,
            vpn: Vpn::new(1),
            level: 2,
            at: Cycle::ZERO,
        });
        assert!(!fb.is_empty());
        fb.drain();
        assert!(fb.is_empty());
        assert_eq!(fb.drain().len(), 0);
    }

    #[test]
    fn iter_does_not_consume() {
        let mut fb = FaultBuffer::new();
        fb.record(FaultRecord {
            asid: Asid::ZERO,
            vpn: Vpn::new(1),
            level: 1,
            at: Cycle::ZERO,
        });
        assert_eq!(fb.iter().count(), 1);
        assert_eq!(fb.len(), 1);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut fb = FaultBuffer::with_capacity(2);
        for i in 0..5 {
            fb.record(FaultRecord {
                asid: Asid::ZERO,
                vpn: Vpn::new(i),
                level: 1,
                at: Cycle::new(i),
            });
        }
        assert_eq!(fb.len(), 2);
        assert_eq!(fb.overflow_dropped(), 3);
        let drained = fb.drain();
        // The newest two records survive.
        assert_eq!(drained[0].vpn, Vpn::new(3));
        assert_eq!(drained[1].vpn, Vpn::new(4));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = FaultBuffer::with_capacity(0);
    }
}
