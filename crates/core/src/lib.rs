//! **SoftWalker**: software page table walking for GPUs — the paper's
//! primary contribution.
//!
//! Instead of a fixed pool of hardware Page Table Walkers, SoftWalker
//! resolves L2 TLB misses with *Page Walk Warps* (PW Warps): one
//! specialized, isolated warp per SM whose 32 threads each execute the
//! lightweight walk routine of the paper's Figure 14 — built from four new
//! instructions:
//!
//! | ISA  | Role |
//! |------|------|
//! | `LDPT` | load a page-table entry by physical address, bypassing the TLB |
//! | `FL2T` | fill the L2 TLB with the final PTE (resolving its MSHRs) |
//! | `FPWC` | fill the Page Walk Cache with a just-read directory entry |
//! | `FFB`  | log an invalid PTE into the Fault Buffer (UVM page fault path) |
//!
//! The pieces, mirroring the paper's Figure 10/11 architecture:
//!
//! * [`SoftPwb`] — the per-SM, shared-memory-backed request buffer with its
//!   2-bit-per-entry status bitmap (invalid / valid / processing), managed
//!   by the SoftWalker Controller.
//! * [`PwWarpUnit`] — the PW Warp execution model: 32 walk threads sharing
//!   one instruction issue port (1 instr/cycle, highest scheduling
//!   priority), timed `LDPT` memory reads through the L2 data cache, and
//!   completion via `FL2T`.
//! * [`RequestDistributor`] — the L2-TLB-side dispatcher with per-core
//!   in-flight counters and round-robin / random / stall-aware policies
//!   (Figure 26).
//! * [`FaultBuffer`] — the UVM-compatible fault log fed by `FFB`.
//!
//! A full-GPU deployment (one PW Warp per SM, In-TLB MSHRs at the L2 TLB,
//! hybrid hardware+software mode) is assembled by the `swgpu-sim` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod distributor;
mod fault;
mod pw_warp;
mod softpwb;

pub use distributor::{DistributorPolicy, DistributorStats, RequestDistributor};
pub use fault::{FaultBuffer, FaultRecord};
pub use pw_warp::{PwWarpConfig, PwWarpStats, PwWarpUnit, SwCompletion, SwWalkRequest};
pub use softpwb::{SlotStatus, SoftPwb};
