//! The Request Distributor (§4.4, Figure 11 top half).
//!
//! Sits beside the L2 TLB and assigns each missed translation to an SM for
//! software walking. A per-core counter tracks requests in flight to each
//! SM (bounded by the SoftPWB capacity) so cores are never oversubscribed;
//! the counter decrements when the core's `FL2T` fill arrives back at the
//! L2 TLB. Three selection policies are modelled (Figure 26): round-robin
//! (the paper's low-overhead default), random, and stall-aware (prefer
//! cores currently unable to issue user instructions).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swgpu_types::SmId;

/// Core-selection policy (Figure 26 compares all three; they perform
/// within noise of each other, so the paper adopts round-robin).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistributorPolicy {
    /// Rotate through cores — the default.
    RoundRobin,
    /// Uniformly random core with capacity.
    Random,
    /// Prefer cores that are currently stalled (their issue ports are
    /// idle anyway); fall back to round-robin among the rest.
    StallAware,
}

/// Dispatch statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistributorStats {
    /// Requests dispatched to cores.
    pub dispatched: u64,
    /// Dispatch attempts that found every core full (the request waits at
    /// the L2 TLB and retries).
    pub blocked: u64,
}

/// The L2-TLB-side request distributor.
///
/// # Example
///
/// ```
/// use softwalker::{DistributorPolicy, RequestDistributor};
/// use swgpu_types::SmId;
///
/// let mut d = RequestDistributor::new(DistributorPolicy::RoundRobin, 2, 1);
/// let a = d.select_core(&[false, false]).unwrap();
/// let b = d.select_core(&[false, false]).unwrap();
/// assert_ne!(a, b, "round-robin alternates");
/// assert!(d.select_core(&[false, false]).is_none(), "both cores full");
/// d.on_fill(a);
/// assert_eq!(d.select_core(&[false, false]), Some(a));
/// ```
#[derive(Debug)]
pub struct RequestDistributor {
    policy: DistributorPolicy,
    counters: Vec<u32>,
    capacity: u32,
    rr_ptr: usize,
    /// Separate rotation pointer for prefetch placement, so prefetching
    /// never perturbs the demand-dispatch order (or the RNG stream).
    pf_ptr: usize,
    rng: StdRng,
    stats: DistributorStats,
}

impl RequestDistributor {
    /// Creates a distributor for `cores` SMs, each able to hold
    /// `per_core_capacity` in-flight requests (the SoftPWB depth, 32).
    ///
    /// # Panics
    ///
    /// Panics if `cores` or `per_core_capacity` is zero.
    pub fn new(policy: DistributorPolicy, cores: usize, per_core_capacity: u32) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(per_core_capacity > 0, "per-core capacity must be positive");
        Self {
            policy,
            counters: vec![0; cores],
            capacity: per_core_capacity,
            rr_ptr: 0,
            pf_ptr: 0,
            rng: StdRng::seed_from_u64(0x50f7_3a1c),
            stats: DistributorStats::default(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> DistributorPolicy {
        self.policy
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DistributorStats {
        self.stats
    }

    /// In-flight requests currently assigned to `sm`.
    pub fn in_flight(&self, sm: SmId) -> u32 {
        self.counters[sm.index()]
    }

    /// Total requests currently dispatched and unfilled.
    pub fn total_in_flight(&self) -> u32 {
        self.counters.iter().sum()
    }

    /// Picks a core with spare SoftPWB capacity and increments its counter
    /// (Figure 11 steps 1-2). `stalled` flags which cores are currently
    /// stall-bound (used by [`DistributorPolicy::StallAware`]; the slice
    /// may be empty for other policies). Returns `None` when every core is
    /// full — the caller retries next cycle.
    pub fn select_core(&mut self, stalled: &[bool]) -> Option<SmId> {
        self.select_core_among(stalled, &[])
    }

    /// Like [`RequestDistributor::select_core`] but restricted to the
    /// cores flagged in `allowed` — the partitioned multi-tenant policy
    /// dispatches a tenant's walks only to that tenant's SMs. An empty
    /// `allowed` slice means every core is eligible (the single-tenant
    /// path, byte-identical to `select_core`).
    pub fn select_core_among(&mut self, stalled: &[bool], allowed: &[bool]) -> Option<SmId> {
        let n = self.counters.len();
        let ok = |i: usize| allowed.is_empty() || allowed.get(i).copied().unwrap_or(false);
        let pick = match self.policy {
            DistributorPolicy::RoundRobin => self.pick_round_robin(ok),
            DistributorPolicy::Random => {
                // Reservoir pick: the k-th free core replaces the current
                // choice with probability 1/k, which is uniform over all
                // free cores without materializing a candidate list —
                // select_core runs every cycle, so this path must not
                // allocate.
                let mut chosen = None;
                let mut free = 0usize;
                for (i, &c) in self.counters.iter().enumerate() {
                    if c < self.capacity && ok(i) {
                        free += 1;
                        if self.rng.gen_range(0..free) == 0 {
                            chosen = Some(i);
                        }
                    }
                }
                chosen
            }
            DistributorPolicy::StallAware => self
                .pick_round_robin(|i| ok(i) && stalled.get(i).copied().unwrap_or(false))
                .or_else(|| self.pick_round_robin(ok)),
        };
        match pick {
            Some(i) => {
                self.counters[i] += 1;
                self.rr_ptr = (i + 1) % n;
                self.stats.dispatched += 1;
                Some(SmId::new(i as u16))
            }
            None => {
                self.stats.blocked += 1;
                None
            }
        }
    }

    fn pick_round_robin(&self, extra: impl Fn(usize) -> bool) -> Option<usize> {
        let n = self.counters.len();
        (0..n)
            .map(|step| (self.rr_ptr + step) % n)
            .find(|&i| self.counters[i] < self.capacity && extra(i))
    }

    /// Places a translation *prefetch* on a core whose PW warp has idle
    /// threads (`idle[i]`), rotating independently of the demand pointer
    /// so prefetching never changes which core the next demand walk gets.
    /// The core's in-flight counter is charged like a demand dispatch —
    /// the prefetch's `FL2T` fill releases it via [`Self::on_fill`] — so
    /// SoftPWB capacity is still never oversubscribed. Returns `None`
    /// (without counting a block) when no idle core has capacity.
    pub fn select_idle_core(&mut self, idle: &[bool]) -> Option<SmId> {
        let n = self.counters.len();
        let pick = (0..n)
            .map(|step| (self.pf_ptr + step) % n)
            .find(|&i| self.counters[i] < self.capacity && idle.get(i).copied().unwrap_or(false));
        let i = pick?;
        self.counters[i] += 1;
        self.pf_ptr = (i + 1) % n;
        self.stats.dispatched += 1;
        Some(SmId::new(i as u16))
    }

    /// A core's `FL2T` fill arrived back at the L2 TLB (Figure 11 step 4):
    /// release one slot.
    ///
    /// # Panics
    ///
    /// Panics if the core had no requests in flight (a lost-token bug).
    pub fn on_fill(&mut self, sm: SmId) {
        let c = &mut self.counters[sm.index()];
        assert!(*c > 0, "fill from a core with no in-flight requests");
        *c -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_spreads_evenly() {
        let mut d = RequestDistributor::new(DistributorPolicy::RoundRobin, 4, 8);
        let mut counts = [0u32; 4];
        for _ in 0..16 {
            let sm = d.select_core(&[]).unwrap();
            counts[sm.index()] += 1;
        }
        assert_eq!(counts, [4, 4, 4, 4]);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut d = RequestDistributor::new(DistributorPolicy::RoundRobin, 2, 2);
        for _ in 0..4 {
            assert!(d.select_core(&[]).is_some());
        }
        assert!(d.select_core(&[]).is_none());
        assert_eq!(d.stats().blocked, 1);
        assert_eq!(d.total_in_flight(), 4);
    }

    #[test]
    fn masked_selection_confines_dispatch() {
        let mut d = RequestDistributor::new(DistributorPolicy::RoundRobin, 4, 2);
        let allowed = [false, true, false, true];
        for _ in 0..4 {
            let sm = d.select_core_among(&[], &allowed).unwrap();
            assert!(allowed[sm.index()], "dispatched outside the partition");
        }
        // The partition is saturated even though cores 0/2 are empty.
        assert!(d.select_core_among(&[], &allowed).is_none());
        assert_eq!(d.stats().blocked, 1);
        assert_eq!(d.in_flight(SmId::new(0)), 0);
        assert_eq!(d.in_flight(SmId::new(2)), 0);
        // An empty mask behaves exactly like select_core.
        assert!(d.select_core_among(&[], &[]).is_some());
    }

    #[test]
    fn fill_releases_capacity() {
        let mut d = RequestDistributor::new(DistributorPolicy::RoundRobin, 1, 1);
        let sm = d.select_core(&[]).unwrap();
        assert!(d.select_core(&[]).is_none());
        d.on_fill(sm);
        assert_eq!(d.in_flight(sm), 0);
        assert!(d.select_core(&[]).is_some());
    }

    #[test]
    fn random_policy_uses_all_cores_eventually() {
        let mut d = RequestDistributor::new(DistributorPolicy::Random, 4, 1000);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let sm = d.select_core(&[]).unwrap();
            seen[sm.index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "seen={seen:?}");
    }

    #[test]
    fn random_policy_is_seeded_deterministic() {
        let run = || {
            let mut d = RequestDistributor::new(DistributorPolicy::Random, 8, 4);
            let picks: Vec<u16> = (0..24)
                .map(|_| d.select_core(&[]).unwrap().value())
                .collect();
            picks
        };
        assert_eq!(run(), run(), "same seed must give the same dispatch order");
    }

    #[test]
    fn random_policy_is_roughly_uniform_over_free_cores() {
        let mut d = RequestDistributor::new(DistributorPolicy::Random, 4, u32::MAX);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[d.select_core(&[]).unwrap().index()] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed pick counts: {counts:?}");
        }
    }

    #[test]
    fn stall_aware_prefers_stalled_cores() {
        let mut d = RequestDistributor::new(DistributorPolicy::StallAware, 4, 8);
        for _ in 0..8 {
            let sm = d.select_core(&[false, false, true, false]).unwrap();
            assert_eq!(sm, SmId::new(2));
        }
        // Stalled core full → falls back to others.
        let sm = d.select_core(&[false, false, true, false]).unwrap();
        assert_ne!(sm, SmId::new(2));
    }

    #[test]
    fn stall_aware_with_no_stalled_behaves_like_rr() {
        let mut d = RequestDistributor::new(DistributorPolicy::StallAware, 3, 8);
        let picks: Vec<_> = (0..3)
            .map(|_| d.select_core(&[false, false, false]).unwrap().index())
            .collect();
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn idle_selection_rotates_without_moving_the_demand_pointer() {
        let mut d = RequestDistributor::new(DistributorPolicy::RoundRobin, 4, 8);
        // Prefetch placement only considers idle cores and rotates among
        // them on its own pointer.
        let idle = [true, false, true, false];
        assert_eq!(d.select_idle_core(&idle), Some(SmId::new(0)));
        assert_eq!(d.select_idle_core(&idle), Some(SmId::new(2)));
        assert_eq!(d.select_idle_core(&idle), Some(SmId::new(0)));
        // The demand pointer is untouched: the next demand dispatch still
        // starts at core 0.
        assert_eq!(d.select_core(&[]), Some(SmId::new(0)));
        assert_eq!(d.in_flight(SmId::new(0)), 3);
    }

    #[test]
    fn idle_selection_respects_capacity_and_idleness() {
        let mut d = RequestDistributor::new(DistributorPolicy::RoundRobin, 2, 1);
        assert_eq!(d.select_idle_core(&[false, false]), None, "nobody idle");
        assert_eq!(d.select_idle_core(&[true, false]), Some(SmId::new(0)));
        assert_eq!(d.select_idle_core(&[true, false]), None, "core 0 full");
        assert_eq!(d.stats().blocked, 0, "prefetch misses are not blocks");
        d.on_fill(SmId::new(0));
        assert_eq!(d.select_idle_core(&[true, true]), Some(SmId::new(1)));
    }

    #[test]
    #[should_panic(expected = "no in-flight")]
    fn spurious_fill_panics() {
        let mut d = RequestDistributor::new(DistributorPolicy::RoundRobin, 1, 1);
        d.on_fill(SmId::new(0));
    }
}
