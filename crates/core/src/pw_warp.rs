//! The Page Walk Warp execution model.
//!
//! One PW Warp per SM: 32 threads, each able to walk one page-table
//! request from the SoftPWB. The warp is *structurally isolated* from user
//! warps (its own instruction-buffer/scoreboard/SIMT-stack slots — §4.2),
//! has the highest scheduling priority, and shares the SM's single
//! instruction issue port: at most one PW instruction issues per cycle
//! across all 32 threads. `LDPT` loads go to the L2 data cache (PTEs are
//! not cached in L1D), so a software walk costs a handful of issue cycles
//! plus the same memory reads a hardware walker would make — the "slightly
//! longer per-walk latency" of Figure 9 that massive parallelism repays.

use crate::fault::{FaultBuffer, FaultRecord};
use crate::softpwb::SoftPwb;
use std::collections::{HashMap, VecDeque};
use swgpu_mem::{AccessKind, MemReq, PhysMem};
use swgpu_pt::{read_pte_observed, PageWalkCache, RadixPageTable, LEAF_LEVEL};
use swgpu_types::fault::site;
use swgpu_types::{
    Asid, Cycle, DelayQueue, FaultInjectionStats, FaultInjector, FaultPlan, IdGen, MemReqId, Pfn,
    PhysAddr, PteReadEvent, Vpn,
};

/// A walk request as dispatched to an SM by the Request Distributor.
///
/// The distributor consults the PWC before dispatch, so the request
/// carries the starting level and node base (the paper's 96-bit SoftPWB
/// entry: VPN + page-table base PFN + level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwWalkRequest {
    /// Address space the walk translates for — selects the tenant's page
    /// table and tags the PWC fills and the resulting L2 TLB fill.
    pub asid: Asid,
    /// VPN to translate.
    pub vpn: Vpn,
    /// When the L2 TLB miss allocated the walk (queueing measured from
    /// here by the caller).
    pub issued_at: Cycle,
    /// When the Request Distributor won a core and sent the request.
    pub dispatched_at: Cycle,
    /// First radix level to read (from the PWC lookup at dispatch).
    pub start_level: u8,
    /// Node base address serving `start_level`.
    pub node_base: PhysAddr,
    /// Whether this walk replays a page the driver just populated on a
    /// major fault — the memory-manager fill requests PW Warps service in
    /// demand-paged mode (counted as `mm_sw_fill_replays`).
    pub fill_replay: bool,
    /// Whether this walk was issued speculatively by the translation
    /// prefetcher rather than by a demand miss (its fill installs with
    /// the prefetch tag in the L2 TLB).
    pub prefetch: bool,
}

impl SwWalkRequest {
    /// Creates a dispatch-ready request.
    pub fn new(
        vpn: Vpn,
        issued_at: Cycle,
        dispatched_at: Cycle,
        start_level: u8,
        node_base: PhysAddr,
    ) -> Self {
        Self {
            asid: Asid::ZERO,
            vpn,
            issued_at,
            dispatched_at,
            start_level,
            node_base,
            fill_replay: false,
            prefetch: false,
        }
    }

    /// Rebinds the request to a tenant's address space.
    pub fn for_asid(mut self, asid: Asid) -> Self {
        self.asid = asid;
        self
    }

    /// Marks the request as the replay of a driver page fill.
    pub fn as_fill_replay(mut self) -> Self {
        self.fill_replay = true;
        self
    }

    /// Marks the request as a speculative translation prefetch.
    pub fn as_prefetch(mut self) -> Self {
        self.prefetch = true;
        self
    }
}

/// A finished software walk, as reported by the `FL2T` instruction. The
/// simulator adds the SM→L2TLB return latency before resolving the L2
/// MSHRs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwCompletion {
    /// Address space the translation belongs to.
    pub asid: Asid,
    /// Translated VPN.
    pub vpn: Vpn,
    /// Resulting frame; `None` means the walk hit an invalid PTE and an
    /// [`FaultRecord`] was written via `FFB`.
    pub pfn: Option<Pfn>,
    /// Original L2-miss time.
    pub issued_at: Cycle,
    /// Distributor dispatch time.
    pub dispatched_at: Cycle,
    /// Arrival at the SoftPWB.
    pub arrived_at: Cycle,
    /// PW thread start (end of SoftPWB queueing).
    pub started_at: Cycle,
    /// FL2T issue time at the SM.
    pub finished_at: Cycle,
}

impl SwCompletion {
    /// Cycles the request waited for a PW thread inside the SoftPWB — the
    /// software-side queueing component.
    pub fn softpwb_wait(&self) -> u64 {
        self.started_at.since(self.arrived_at)
    }

    /// Instruction-execution plus memory time on the PW thread.
    pub fn execution_time(&self) -> u64 {
        self.finished_at.since(self.started_at)
    }
}

/// Timing/shape parameters of the PW Warp routine (Figure 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PwWarpConfig {
    /// Walk threads per warp (32).
    pub threads: usize,
    /// SoftPWB entries (32 — one per thread in Table 3).
    pub softpwb_entries: usize,
    /// Instructions before the first `LDPT`: load the SoftPWB entry,
    /// decode VPN/base/level, compute the first offset (Figure 14 lines
    /// 1-10).
    pub setup_instrs: u32,
    /// Non-memory instructions between levels: fault check, `FPWC`, next
    /// offset computation (lines 8-23 minus the `LDPT`).
    pub per_level_instrs: u32,
    /// Instructions to finish: the `FL2T` fill (line 26).
    pub finish_instrs: u32,
    /// Fault-buffer capacity: records beyond this evict the oldest
    /// (counted via [`FaultBuffer::overflow_dropped`]).
    pub fault_buffer_entries: usize,
}

impl Default for PwWarpConfig {
    fn default() -> Self {
        Self {
            threads: 32,
            softpwb_entries: 32,
            setup_instrs: 6,
            per_level_instrs: 3,
            finish_instrs: 1,
            fault_buffer_entries: FaultBuffer::DEFAULT_CAPACITY,
        }
    }
}

impl PwWarpConfig {
    fn validate(&self) {
        assert!(self.threads > 0, "PW warp needs at least one thread");
        assert!(self.softpwb_entries > 0, "SoftPWB needs entries");
        assert!(self.finish_instrs > 0, "FL2T costs at least one issue");
        assert!(self.fault_buffer_entries > 0, "fault buffer needs entries");
    }
}

/// Cumulative PW Warp statistics for one SM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PwWarpStats {
    /// Walks completed (including faults).
    pub walks_completed: u64,
    /// Walks that ended in `FFB`.
    pub faults: u64,
    /// PW instructions issued (cycles the warp consumed the issue port).
    pub instructions_issued: u64,
    /// `LDPT` memory reads issued.
    pub ldpt_reads: u64,
    /// Σ SoftPWB wait cycles over completed walks.
    pub total_softpwb_wait: u64,
    /// Σ execution cycles over completed walks.
    pub total_execution: u64,
    /// Successfully completed walks that replayed a driver page fill
    /// (demand-paged mode only; surfaced as `mm_sw_fill_replays`).
    pub fill_replays: u64,
    /// Successfully completed walks that were speculative translation
    /// prefetches.
    pub prefetch_walks: u64,
}

#[derive(Debug, Clone, Copy)]
enum Action {
    Ldpt,
    Fl2t(Option<Pfn>),
    Ffb(u8),
}

#[derive(Debug, Clone, Copy)]
enum ThreadState {
    Idle,
    NeedIssue {
        remaining: u32,
        action: Action,
    },
    WaitMem,
    /// Fault injection wedged the thread; only the watchdog frees it.
    Stuck,
    /// Backoff wait before re-executing the `LDPT` whose decode was
    /// corrupted.
    WaitRetry,
}

#[derive(Debug, Clone, Copy)]
struct ThreadWalk {
    slot: usize,
    asid: Asid,
    vpn: Vpn,
    issued_at: Cycle,
    dispatched_at: Cycle,
    arrived_at: Cycle,
    started_at: Cycle,
    level: u8,
    node: PhysAddr,
    /// Whether this walk replays a driver page fill.
    fill_replay: bool,
    /// Whether this walk is a speculative translation prefetch.
    prefetch: bool,
    /// Bounded-backoff retries consumed (watchdog restarts and corrupted
    /// reads both count).
    retries: u32,
    /// Injected faults attributed to this walk, credited to recovered /
    /// escalated counters when the walk ends.
    pending_inj: u64,
    /// Generation counter invalidating stale watchdog deadlines.
    gen: u64,
    /// Outstanding `LDPT`, if any (cancelled on watchdog timeout).
    wait_id: Option<MemReqId>,
}

/// Per-SM fault injection + recovery state; present only when a
/// nonzero-rate [`FaultPlan`] is armed.
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    /// PTE-corruption stream for this SM's `LDPT` decodes.
    inj: FaultInjector,
    /// Stuck-thread stream, drawn once per walk assignment.
    stuck_inj: FaultInjector,
    stats: FaultInjectionStats,
    /// `(thread_idx, gen)` watchdog deadlines.
    watchdog: DelayQueue<(usize, u64)>,
    /// `(thread_idx, gen)` backoff retries.
    retry_wake: DelayQueue<(usize, u64)>,
}

#[derive(Debug)]
struct Thread {
    state: ThreadState,
    walk: Option<ThreadWalk>,
}

/// The per-SM PW Warp plus its SoftPWB and controller.
///
/// Driven by the simulator once per cycle:
///
/// 1. [`PwWarpUnit::accept`] requests forwarded by the Request Distributor
///    (after the L2TLB→SM communication latency).
/// 2. [`PwWarpUnit::tick`] — returns `true` when the warp consumed the
///    SM's issue port this cycle (the SM is then ticked with
///    `issue_slot_free == false`).
/// 3. [`PwWarpUnit::pop_mem_request`] → the shared L2 data cache.
/// 4. [`PwWarpUnit::on_mem_response`] for each completed `LDPT`.
/// 5. [`PwWarpUnit::pop_completion`] → back to the L2 TLB (add the return
///    communication latency).
#[derive(Debug)]
pub struct PwWarpUnit {
    cfg: PwWarpConfig,
    pwb: SoftPwb,
    threads: Vec<Thread>,
    // O(1)-per-cycle scheduling state: idle threads are a stack, threads
    // awaiting the issue port an FIFO queue (round-robin-equivalent
    // fairness).
    idle_threads: Vec<usize>,
    issue_queue: VecDeque<usize>,
    active_walks: usize,
    mem_out: VecDeque<MemReq>,
    mem_wait: HashMap<MemReqId, usize>,
    completions: VecDeque<SwCompletion>,
    faults: FaultBuffer,
    stats: PwWarpStats,
    fault: Option<FaultState>,
    // Per-thread-slot generation floor: a new walk on a reused slot
    // continues past the previous walk's final generation, so watchdog
    // or retry deadlines armed for the old walk can never match it.
    gen_base: Vec<u64>,
    // Observation: when armed, every decoded PTE level is buffered here
    // for the owning simulator to drain into its span recorder. Disarmed
    // (the default) the buffer stays empty and untouched.
    observed: bool,
    obs_events: Vec<PteReadEvent>,
}

impl PwWarpUnit {
    /// Builds a PW Warp unit.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (zero threads/entries).
    pub fn new(cfg: PwWarpConfig) -> Self {
        cfg.validate();
        Self {
            pwb: SoftPwb::new(cfg.softpwb_entries),
            threads: (0..cfg.threads)
                .map(|_| Thread {
                    state: ThreadState::Idle,
                    walk: None,
                })
                .collect(),
            idle_threads: (0..cfg.threads).rev().collect(),
            issue_queue: VecDeque::new(),
            active_walks: 0,
            mem_out: VecDeque::new(),
            mem_wait: HashMap::new(),
            completions: VecDeque::new(),
            faults: FaultBuffer::with_capacity(cfg.fault_buffer_entries),
            gen_base: vec![0; cfg.threads],
            stats: PwWarpStats::default(),
            fault: None,
            observed: false,
            obs_events: Vec::new(),
            cfg,
        }
    }

    /// Arms or disarms per-level PTE-read observation. Observation is
    /// pure bookkeeping: it never changes walk timing or results.
    pub fn set_observed(&mut self, on: bool) {
        self.observed = on;
    }

    /// Drains the buffered [`PteReadEvent`]s (empty unless observed).
    pub fn drain_obs_events(&mut self) -> Vec<PteReadEvent> {
        std::mem::take(&mut self.obs_events)
    }

    /// Walks currently executing on threads of this PW Warp.
    pub fn active_walks(&self) -> usize {
        self.active_walks
    }

    /// SoftPWB slots currently holding requests (capacity − free).
    pub fn pwb_occupancy(&self) -> usize {
        self.pwb.capacity() - self.pwb.free_slots()
    }

    /// Arms fault injection + recovery per `plan` for the PW Warp on SM
    /// `sm_index` (each SM draws an independent, reproducible stream). A
    /// disabled plan leaves the unit in its inert baseline state.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan, sm_index: u64) {
        if plan.enabled() {
            self.fault = Some(FaultState {
                inj: FaultInjector::new_instance(plan.seed, site::PW_WARP_PTE, sm_index),
                stuck_inj: FaultInjector::new_instance(plan.seed, site::STUCK_THREAD, sm_index),
                plan: plan.clone(),
                stats: FaultInjectionStats::default(),
                watchdog: DelayQueue::new(),
                retry_wake: DelayQueue::new(),
            });
        }
    }

    /// Counters for faults injected at / recovered by this unit,
    /// including fault-buffer overflow drops.
    pub fn fault_stats(&self) -> FaultInjectionStats {
        let mut s = self
            .fault
            .as_ref()
            .map(|f| {
                let mut s = f.stats;
                s.merge(&f.inj.stats);
                s.merge(&f.stuck_inj.stats);
                s
            })
            .unwrap_or_default();
        s.fault_buffer_overflow_drops += self.faults.overflow_dropped();
        s
    }

    /// The unit's configuration.
    pub fn config(&self) -> PwWarpConfig {
        self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PwWarpStats {
        self.stats
    }

    /// SoftPWB slots currently accepting requests — the value the Request
    /// Distributor's per-core counter tracks.
    pub fn free_slots(&self) -> usize {
        self.pwb.free_slots()
    }

    /// Read access to the fault buffer.
    pub fn fault_buffer(&self) -> &FaultBuffer {
        &self.faults
    }

    /// Drains the fault buffer (the UVM driver's read-and-clear).
    pub fn drain_faults(&mut self) -> Vec<FaultRecord> {
        self.faults.drain()
    }

    /// Number of walker threads currently idle — spare walk capacity the
    /// translation prefetcher may borrow without delaying demand walks.
    pub fn idle_thread_slots(&self) -> usize {
        self.idle_threads.len()
    }

    /// Whether no walk is queued or executing.
    pub fn is_idle(&self) -> bool {
        self.pwb.free_slots() == self.pwb.capacity()
            && self.active_walks == 0
            && self.mem_out.is_empty()
            && self.completions.is_empty()
    }

    /// Accepts a dispatched request into the SoftPWB. Returns `false` when
    /// the buffer is full (the distributor's counter should prevent this).
    pub fn accept(&mut self, now: Cycle, req: SwWalkRequest) -> bool {
        self.pwb.insert(req, now).is_some()
    }

    /// Advances one cycle: fires watchdogs and pending retries, assigns
    /// valid SoftPWB entries to idle threads and issues at most one PW
    /// instruction. Returns `true` if the issue port was consumed.
    pub fn tick(&mut self, now: Cycle, ids: &mut IdGen) -> bool {
        if self.fault.is_some() {
            self.tick_fault(now);
        }
        self.assign_threads(now);
        self.issue_one(now, ids)
    }

    /// Fires due watchdog deadlines and backoff retries. Only called when
    /// a fault plan is armed.
    fn tick_fault(&mut self, now: Cycle) {
        loop {
            let fs = self.fault.as_mut().expect("tick_fault without plan");
            if let Some((idx, gen)) = fs.retry_wake.pop_ready(now) {
                let t = &mut self.threads[idx];
                let Some(walk) = t.walk.as_ref() else {
                    continue;
                };
                if walk.gen != gen || !matches!(t.state, ThreadState::WaitRetry) {
                    continue;
                }
                t.state = ThreadState::NeedIssue {
                    remaining: 1,
                    action: Action::Ldpt,
                };
                self.issue_queue.push_back(idx);
                continue;
            }
            let Some((idx, gen)) = fs.watchdog.pop_ready(now) else {
                break;
            };
            let t = &mut self.threads[idx];
            let Some(walk) = t.walk.as_mut() else {
                continue;
            };
            let hung = matches!(t.state, ThreadState::Stuck | ThreadState::WaitMem);
            if walk.gen != gen || !hung {
                continue;
            }
            fs.stats.watchdog_timeouts += 1;
            walk.gen += 1;
            if let Some(id) = walk.wait_id.take() {
                // A late response for the cancelled LDPT becomes a no-op
                // instead of a double-advance.
                self.mem_wait.remove(&id);
            }
            if walk.retries >= fs.plan.max_retries {
                self.escalate(idx, now);
            } else {
                walk.retries += 1;
                fs.stats.walk_retries += 1;
                // A stuck thread restarts the walk routine from scratch;
                // a lost LDPT is simply re-executed.
                let remaining = if matches!(t.state, ThreadState::Stuck) {
                    self.cfg.setup_instrs.max(1)
                } else {
                    1
                };
                t.state = ThreadState::NeedIssue {
                    remaining,
                    action: Action::Ldpt,
                };
                self.issue_queue.push_back(idx);
            }
        }
    }

    /// Abandons a walk whose retry budget is spent: logs an `FFB` record
    /// and completes with `pfn: None` so the simulator escalates the
    /// translation to the UVM driver.
    fn escalate(&mut self, idx: usize, now: Cycle) {
        let walk = self.threads[idx]
            .walk
            .as_mut()
            .expect("escalate without walk");
        let (asid, vpn, level, pending) = (walk.asid, walk.vpn, walk.level, walk.pending_inj);
        walk.pending_inj = 0;
        self.faults.record(FaultRecord {
            asid,
            vpn,
            level,
            at: now,
        });
        let fs = self.fault.as_mut().expect("escalation without plan");
        fs.stats.fault_escalations += 1;
        fs.stats.escalated_injections += pending;
        self.finish(idx, None, now);
    }

    fn assign_threads(&mut self, now: Cycle) {
        while self.pwb.valid_count() > 0 {
            let Some(idx) = self.idle_threads.pop() else {
                break;
            };
            let (slot, req) = self.pwb.take_valid().expect("valid_count checked");
            let arrived_at = self.pwb.arrival_of(slot);
            let t = &mut self.threads[idx];
            debug_assert!(matches!(t.state, ThreadState::Idle));
            t.walk = Some(ThreadWalk {
                slot,
                asid: req.asid,
                vpn: req.vpn,
                issued_at: req.issued_at,
                dispatched_at: req.dispatched_at,
                arrived_at,
                started_at: now,
                level: req.start_level,
                node: req.node_base,
                fill_replay: req.fill_replay,
                prefetch: req.prefetch,
                retries: 0,
                pending_inj: 0,
                gen: self.gen_base[idx],
                wait_id: None,
            });
            t.state = ThreadState::NeedIssue {
                remaining: self.cfg.setup_instrs.max(1),
                action: Action::Ldpt,
            };
            self.issue_queue.push_back(idx);
            self.active_walks += 1;
            if let Some(fs) = self.fault.as_mut() {
                if fs.stuck_inj.fire(fs.plan.stuck_thread_rate) {
                    // The thread wedges before executing; the watchdog
                    // restarts (or ultimately escalates) the walk.
                    fs.stuck_inj.stats.injected_stuck_threads += 1;
                    let t = &mut self.threads[idx];
                    let walk = t.walk.as_mut().expect("just assigned");
                    walk.pending_inj += 1;
                    let gen = walk.gen;
                    t.state = ThreadState::Stuck;
                    self.issue_queue.retain(|&q| q != idx);
                    let deadline = now + fs.plan.backoff_cycles(0);
                    fs.watchdog.push(deadline, (idx, gen));
                }
            }
        }
    }

    fn issue_one(&mut self, now: Cycle, ids: &mut IdGen) -> bool {
        let Some(idx) = self.issue_queue.pop_front() else {
            return false;
        };
        let ThreadState::NeedIssue { remaining, action } = self.threads[idx].state else {
            unreachable!("issue queue holds only NeedIssue threads");
        };
        self.stats.instructions_issued += 1;
        if remaining > 1 {
            self.threads[idx].state = ThreadState::NeedIssue {
                remaining: remaining - 1,
                action,
            };
            self.issue_queue.push_back(idx);
            return true;
        }
        self.perform(idx, action, now, ids);
        true
    }

    fn perform(&mut self, idx: usize, action: Action, now: Cycle, ids: &mut IdGen) {
        match action {
            Action::Ldpt => {
                let walk = self.threads[idx].walk.expect("LDPT without a walk");
                let addr = RadixPageTable::entry_addr(walk.level, walk.node, walk.vpn);
                let id = ids.next_mem();
                self.mem_wait.insert(id, idx);
                self.mem_out
                    .push_back(MemReq::new(id, addr, AccessKind::PageTable));
                self.stats.ldpt_reads += 1;
                self.threads[idx].state = ThreadState::WaitMem;
                if let Some(fs) = self.fault.as_mut() {
                    let walk = self.threads[idx].walk.as_mut().expect("walk present");
                    walk.wait_id = Some(id);
                    let deadline = now + fs.plan.backoff_cycles(walk.retries);
                    fs.watchdog.push(deadline, (idx, walk.gen));
                }
            }
            Action::Fl2t(pfn) => self.finish(idx, pfn, now),
            Action::Ffb(level) => {
                let walk = self.threads[idx].walk.expect("FFB without a walk");
                self.faults.record(FaultRecord {
                    asid: walk.asid,
                    vpn: walk.vpn,
                    level,
                    at: now,
                });
                self.finish(idx, None, now);
            }
        }
    }

    fn finish(&mut self, idx: usize, pfn: Option<Pfn>, now: Cycle) {
        let walk = self.threads[idx].walk.take().expect("finish without walk");
        if let Some(fs) = self.fault.as_mut() {
            // The walk reached a real conclusion, so every injection still
            // attributed to it was overcome (escalations zero this first).
            fs.stats.recovered_injections += walk.pending_inj;
        }
        // The next walk on this slot must outrun every deadline armed for
        // this one.
        self.gen_base[idx] = walk.gen + 1;
        self.pwb.complete(walk.slot);
        self.threads[idx].state = ThreadState::Idle;
        self.idle_threads.push(idx);
        self.active_walks -= 1;
        self.stats.walks_completed += 1;
        if pfn.is_none() {
            self.stats.faults += 1;
        }
        if walk.fill_replay && pfn.is_some() {
            self.stats.fill_replays += 1;
        }
        if walk.prefetch && pfn.is_some() {
            self.stats.prefetch_walks += 1;
        }
        self.stats.total_softpwb_wait += walk.started_at.since(walk.arrived_at);
        self.stats.total_execution += now.since(walk.started_at);
        self.completions.push_back(SwCompletion {
            asid: walk.asid,
            vpn: walk.vpn,
            pfn,
            issued_at: walk.issued_at,
            dispatched_at: walk.dispatched_at,
            arrived_at: walk.arrived_at,
            started_at: walk.started_at,
            finished_at: now,
        });
    }

    /// Next `LDPT` read destined for the L2 data cache.
    pub fn pop_mem_request(&mut self) -> Option<MemReq> {
        self.mem_out.pop_front()
    }

    /// Delivers a completed `LDPT` read. Returns `false` for ids this unit
    /// does not own.
    pub fn on_mem_response(
        &mut self,
        id: MemReqId,
        now: Cycle,
        mem: &PhysMem,
        pwc: &mut PageWalkCache,
    ) -> bool {
        let Some(idx) = self.mem_wait.remove(&id) else {
            return false;
        };
        let walk = self.threads[idx].walk.as_mut().expect("walk in flight");
        if self.fault.is_some() {
            walk.wait_id = None;
            walk.gen += 1;
        }
        let addr = RadixPageTable::entry_addr(walk.level, walk.node, walk.vpn);
        let (asid, vpn, level) = (walk.asid, walk.vpn, walk.level);
        let inj = self.fault.as_mut().map(|f| {
            (
                &mut f.inj,
                f.plan.pte_corrupt_rate,
                f.plan.pte_silent_corrupt_rate,
            )
        });
        let sink = self.observed.then_some(&mut self.obs_events);
        let (pte, corrupted) = read_pte_observed(mem, addr, inj, vpn, level, now, sink);
        if corrupted {
            walk.pending_inj += 1;
            let fs = self.fault.as_mut().expect("corruption without plan");
            if walk.retries >= fs.plan.max_retries {
                self.escalate(idx, now);
            } else {
                walk.retries += 1;
                walk.gen += 1;
                fs.stats.walk_retries += 1;
                let wake = now + fs.plan.backoff_cycles(walk.retries);
                fs.retry_wake.push(wake, (idx, walk.gen));
                self.threads[idx].state = ThreadState::WaitRetry;
            }
            return true;
        }
        if walk.level == LEAF_LEVEL {
            let action = if pte.is_valid() {
                Action::Fl2t(Some(pte.pfn()))
            } else {
                Action::Ffb(LEAF_LEVEL)
            };
            self.threads[idx].state = ThreadState::NeedIssue {
                remaining: self.cfg.finish_instrs,
                action,
            };
        } else if let Some(next) = RadixPageTable::next_node(pte) {
            walk.level -= 1;
            walk.node = next;
            pwc.fill(asid, walk.vpn, walk.level, next);
            self.threads[idx].state = ThreadState::NeedIssue {
                remaining: self.cfg.per_level_instrs.max(1),
                action: Action::Ldpt,
            };
        } else {
            let level = walk.level;
            self.threads[idx].state = ThreadState::NeedIssue {
                remaining: 1,
                action: Action::Ffb(level),
            };
        }
        // Every post-memory continuation competes for the issue port.
        self.issue_queue.push_back(idx);
        true
    }

    /// Notifies the unit that an `LDPT` it issued was dropped by fault
    /// injection (no response will arrive). Returns whether the id
    /// belonged to this unit. Recovery happens via the already-armed
    /// watchdog deadline.
    pub fn on_mem_dropped(&mut self, id: MemReqId) -> bool {
        let Some(idx) = self.mem_wait.remove(&id) else {
            return false;
        };
        let walk = self.threads[idx]
            .walk
            .as_mut()
            .expect("drop for unknown walk");
        walk.pending_inj += 1;
        // Leave WaitMem + wait_id armed: the watchdog distinguishes
        // "waiting" from "advancing" by them and will re-issue.
        true
    }

    /// Next finished walk (FL2T or fault), if any.
    pub fn pop_completion(&mut self) -> Option<SwCompletion> {
        self.completions.pop_front()
    }
}

impl swgpu_types::Component for PwWarpUnit {
    /// Immediate work — a thread awaiting the issue port, a valid SoftPWB
    /// entry with an idle thread to take it, an un-routed `LDPT` or an
    /// un-drained completion — demands the very next cycle. Otherwise the
    /// only self-scheduled wakes are the fault watchdog and backoff-retry
    /// deadlines (a stuck thread leaves `issue_queue` entirely; only its
    /// watchdog revives it). Threads parked in `mem_wait` are revived by
    /// the memory side's completion event.
    fn next_event(&self) -> Option<Cycle> {
        if !self.issue_queue.is_empty()
            || (self.pwb.valid_count() > 0 && !self.idle_threads.is_empty())
            || !self.mem_out.is_empty()
            || !self.completions.is_empty()
        {
            return Some(Cycle::ZERO);
        }
        let fs = self.fault.as_ref()?;
        match (fs.watchdog.next_ready(), fs.retry_wake.next_ready()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn is_idle(&self) -> bool {
        PwWarpUnit::is_idle(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swgpu_pt::AddressSpace;
    use swgpu_types::{PageSize, VirtAddr};

    struct Rig {
        mem: PhysMem,
        space: AddressSpace,
        pwc: PageWalkCache,
        ids: IdGen,
    }

    impl Rig {
        fn new(pages: u64) -> Self {
            let mut mem = PhysMem::new();
            let mut space = AddressSpace::new(PageSize::Size64K, &mut mem);
            space.map_region(VirtAddr::new(0), pages * 64 * 1024, &mut mem);
            let mut pwc = PageWalkCache::new(32);
            pwc.set_root(Asid::ZERO, space.radix().root());
            Self {
                mem,
                space,
                pwc,
                ids: IdGen::new(),
            }
        }

        fn request(&mut self, vpn: u64, at: Cycle) -> SwWalkRequest {
            let start = self.pwc.lookup(Asid::ZERO, Vpn::new(vpn));
            SwWalkRequest::new(Vpn::new(vpn), at, at, start.level, start.node_base)
        }
    }

    /// Runs the unit until idle with a fixed memory latency; returns the
    /// completions and the final cycle.
    fn run(unit: &mut PwWarpUnit, rig: &mut Rig, mem_lat: u64) -> (Vec<SwCompletion>, Cycle) {
        let mut now = Cycle::ZERO;
        let mut inflight: swgpu_types::DelayQueue<MemReqId> = swgpu_types::DelayQueue::new();
        let mut done = Vec::new();
        for _ in 0..1_000_000 {
            unit.tick(now, &mut rig.ids);
            while let Some(req) = unit.pop_mem_request() {
                inflight.push(now + mem_lat, req.id);
            }
            while let Some(id) = inflight.pop_ready(now) {
                unit.on_mem_response(id, now, &rig.mem, &mut rig.pwc);
            }
            while let Some(c) = unit.pop_completion() {
                done.push(c);
            }
            if unit.is_idle() && inflight.is_empty() {
                return (done, now);
            }
            now = now.next();
        }
        panic!("PW warp did not drain");
    }

    #[test]
    fn walks_and_translates() {
        let mut rig = Rig::new(16);
        let mut unit = PwWarpUnit::new(PwWarpConfig::default());
        let req = rig.request(3, Cycle::ZERO);
        assert!(unit.accept(Cycle::ZERO, req));
        let (done, _) = run(&mut unit, &mut rig, 100);
        assert_eq!(done.len(), 1);
        let expect = rig.space.mappings().nth(3).unwrap().1;
        assert_eq!(done[0].pfn, Some(expect));
        assert_eq!(unit.stats().ldpt_reads, 4, "cold walk reads 4 levels");
    }

    #[test]
    fn software_walk_costs_more_than_raw_memory() {
        let mut rig = Rig::new(16);
        let mut unit = PwWarpUnit::new(PwWarpConfig::default());
        let req = rig.request(3, Cycle::ZERO);
        unit.accept(Cycle::ZERO, req);
        let (done, _) = run(&mut unit, &mut rig, 100);
        let exec = done[0].execution_time();
        // 4 memory reads (400) + instruction overheads (> 6 setup + 3x3
        // per-level + 1 finish).
        assert!(exec > 400, "exec={exec}");
        assert!(exec < 400 + 64, "instruction overhead should be small");
    }

    #[test]
    fn thirty_two_concurrent_walks_overlap() {
        let mut rig = Rig::new(512);
        let mut unit = PwWarpUnit::new(PwWarpConfig::default());
        for i in 0..32u64 {
            let req = rig.request(i * 16, Cycle::ZERO);
            assert!(unit.accept(Cycle::ZERO, req));
        }
        let (done, end) = run(&mut unit, &mut rig, 100);
        assert_eq!(done.len(), 32);
        // Serial execution would be ≥ 32 x 400 = 12800; overlapped walks
        // share the memory latency.
        assert!(end.value() < 3000, "end={end}");
    }

    #[test]
    fn softpwb_overflow_rejected() {
        let mut rig = Rig::new(64);
        let mut unit = PwWarpUnit::new(PwWarpConfig {
            softpwb_entries: 2,
            ..PwWarpConfig::default()
        });
        let r1 = rig.request(1, Cycle::ZERO);
        let r2 = rig.request(2, Cycle::ZERO);
        let r3 = rig.request(3, Cycle::ZERO);
        assert!(unit.accept(Cycle::ZERO, r1));
        assert!(unit.accept(Cycle::ZERO, r2));
        assert!(!unit.accept(Cycle::ZERO, r3));
    }

    #[test]
    fn invalid_pte_goes_to_fault_buffer() {
        let mut rig = Rig::new(2);
        let mut unit = PwWarpUnit::new(PwWarpConfig::default());
        let req = rig.request(0x5_0000, Cycle::ZERO); // unmapped
        unit.accept(Cycle::ZERO, req);
        let (done, _) = run(&mut unit, &mut rig, 10);
        assert_eq!(done[0].pfn, None);
        assert_eq!(unit.stats().faults, 1);
        let faults = unit.drain_faults();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].vpn, Vpn::new(0x5_0000));
        assert!(unit.fault_buffer().is_empty());
    }

    #[test]
    fn pwc_fills_during_walk_shorten_neighbours() {
        let mut rig = Rig::new(16);
        let mut unit = PwWarpUnit::new(PwWarpConfig::default());
        let r = rig.request(1, Cycle::ZERO);
        unit.accept(Cycle::ZERO, r);
        run(&mut unit, &mut rig, 100);
        // The walk filled the PWC down to the leaf node; a neighbour now
        // starts at level 1.
        let start = rig.pwc.lookup(Asid::ZERO, Vpn::new(2));
        assert!(start.hit);
        assert_eq!(start.level, LEAF_LEVEL);
    }

    #[test]
    fn issue_port_is_exclusive() {
        let mut rig = Rig::new(64);
        let mut unit = PwWarpUnit::new(PwWarpConfig::default());
        for i in 0..4u64 {
            let r = rig.request(i * 8, Cycle::ZERO);
            unit.accept(Cycle::ZERO, r);
        }
        // First tick: exactly one instruction issues even with 4 runnable
        // threads.
        assert!(unit.tick(Cycle::ZERO, &mut rig.ids));
        assert_eq!(unit.stats().instructions_issued, 1);
        // Idle unit does not consume the port.
        let mut idle_unit = PwWarpUnit::new(PwWarpConfig::default());
        assert!(!idle_unit.tick(Cycle::ZERO, &mut rig.ids));
    }

    #[test]
    fn zero_rate_fault_plan_is_inert() {
        let mut rig = Rig::new(16);
        let mut unit = PwWarpUnit::new(PwWarpConfig::default());
        unit.set_fault_plan(&FaultPlan::default(), 0);
        assert!(unit.fault.is_none(), "zero-rate plan must not arm");
        let req = rig.request(3, Cycle::ZERO);
        unit.accept(Cycle::ZERO, req);
        let (done, _) = run(&mut unit, &mut rig, 100);
        assert_eq!(done.len(), 1);
        assert!(!unit.fault_stats().any());
    }

    #[test]
    fn stuck_thread_recovers_via_watchdog_restart() {
        let mut rig = Rig::new(16);
        let mut unit = PwWarpUnit::new(PwWarpConfig::default());
        unit.set_fault_plan(
            &FaultPlan {
                seed: 5,
                stuck_thread_rate: 1.0,
                watchdog_cycles: 300,
                ..FaultPlan::default()
            },
            0,
        );
        let req = rig.request(3, Cycle::ZERO);
        unit.accept(Cycle::ZERO, req);
        let (done, end) = run(&mut unit, &mut rig, 50);
        assert_eq!(done.len(), 1);
        let expect = rig.space.mappings().nth(3).unwrap().1;
        assert_eq!(done[0].pfn, Some(expect), "walk completed after restart");
        assert!(end.value() >= 300, "watchdog delay must be visible");
        let fs = unit.fault_stats();
        assert_eq!(fs.injected_stuck_threads, 1);
        assert_eq!(fs.watchdog_timeouts, 1);
        assert_eq!(fs.recovered_injections, 1);
        assert_eq!(fs.injected_total(), fs.recovered_injections);
    }

    #[test]
    fn corruption_conserved_across_many_walks() {
        let mut rig = Rig::new(512);
        let mut unit = PwWarpUnit::new(PwWarpConfig::default());
        unit.set_fault_plan(
            &FaultPlan {
                seed: 9,
                pte_corrupt_rate: 0.3,
                watchdog_cycles: 1_000,
                ..FaultPlan::default()
            },
            0,
        );
        for i in 0..32u64 {
            let req = rig.request(i * 16, Cycle::ZERO);
            assert!(unit.accept(Cycle::ZERO, req));
        }
        let (done, _) = run(&mut unit, &mut rig, 50);
        assert_eq!(done.len(), 32, "every walk must conclude");
        let fs = unit.fault_stats();
        assert!(fs.injected_pte_corruptions > 0);
        assert_eq!(
            fs.injected_total(),
            fs.recovered_injections + fs.escalated_injections,
            "injected faults leaked: {fs:?}"
        );
        // Escalated walks surfaced as faults (pfn None) for the driver.
        let escalated_pfn_none = done.iter().filter(|c| c.pfn.is_none()).count() as u64;
        assert_eq!(escalated_pfn_none, fs.fault_escalations);
    }

    #[test]
    fn dropped_ldpt_recovers_via_watchdog() {
        let mut rig = Rig::new(16);
        let mut unit = PwWarpUnit::new(PwWarpConfig::default());
        unit.set_fault_plan(
            &FaultPlan {
                seed: 0,
                mem_drop_rate: 1.0, // arms the plan; drops injected manually
                watchdog_cycles: 400,
                ..FaultPlan::default()
            },
            0,
        );
        let req = rig.request(3, Cycle::ZERO);
        unit.accept(Cycle::ZERO, req);
        let mut now = Cycle::ZERO;
        let mut inflight: DelayQueue<MemReqId> = DelayQueue::new();
        let mut dropped_first = false;
        let mut done = Vec::new();
        for _ in 0..1_000_000 {
            unit.tick(now, &mut rig.ids);
            while let Some(req) = unit.pop_mem_request() {
                if !dropped_first {
                    dropped_first = true;
                    assert!(unit.on_mem_dropped(req.id));
                } else {
                    inflight.push(now + 50, req.id);
                }
            }
            while let Some(id) = inflight.pop_ready(now) {
                unit.on_mem_response(id, now, &rig.mem, &mut rig.pwc);
            }
            while let Some(c) = unit.pop_completion() {
                done.push(c);
            }
            if unit.is_idle() && inflight.is_empty() {
                break;
            }
            now = now.next();
        }
        assert_eq!(done.len(), 1, "walk never completed after drop");
        let expect = rig.space.mappings().nth(3).unwrap().1;
        assert_eq!(done[0].pfn, Some(expect));
        let fs = unit.fault_stats();
        assert_eq!(fs.watchdog_timeouts, 1);
        assert_eq!(fs.recovered_injections, 1);
    }

    #[test]
    fn fault_buffer_cap_bounds_memory_under_fault_storm() {
        let mut rig = Rig::new(2);
        let mut unit = PwWarpUnit::new(PwWarpConfig {
            fault_buffer_entries: 4,
            ..PwWarpConfig::default()
        });
        // 16 genuinely-unmapped walks, capacity 4: the buffer drops the
        // oldest 12 records but every walk still completes (faulting).
        for i in 0..16u64 {
            let req = rig.request(0x5_0000 + i * 16, Cycle::ZERO);
            assert!(unit.accept(Cycle::ZERO, req));
        }
        let (done, _) = run(&mut unit, &mut rig, 10);
        assert_eq!(done.len(), 16);
        assert!(done.iter().all(|c| c.pfn.is_none()));
        assert_eq!(unit.fault_buffer().len(), 4);
        assert_eq!(unit.fault_buffer().overflow_dropped(), 12);
        assert_eq!(unit.fault_stats().fault_buffer_overflow_drops, 12);
    }

    #[test]
    fn queue_wait_accounted_when_threads_busy() {
        let mut rig = Rig::new(512);
        let mut unit = PwWarpUnit::new(PwWarpConfig {
            threads: 1,
            softpwb_entries: 4,
            ..PwWarpConfig::default()
        });
        for i in 0..3u64 {
            let r = rig.request(i * 8, Cycle::ZERO);
            unit.accept(Cycle::ZERO, r);
        }
        let (done, _) = run(&mut unit, &mut rig, 50);
        assert_eq!(done.len(), 3);
        // With one thread the later walks waited in the SoftPWB.
        let waits: Vec<u64> = done.iter().map(|c| c.softpwb_wait()).collect();
        assert!(waits.iter().any(|&w| w > 0), "waits={waits:?}");
        assert!(unit.stats().total_softpwb_wait > 0);
    }
}
