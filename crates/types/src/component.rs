//! The [`Component`] trait: the contract every timed simulation unit
//! offers the event-scheduled kernel.
//!
//! The top-level simulator no longer advances time one cycle at a time.
//! Instead it asks every component (and every [`crate::Port`]) for the
//! earliest cycle at which it could make progress, jumps `now` to the
//! minimum, and executes a normal step there. For that to be sound each
//! component must uphold two guarantees:
//!
//! * **No missed events.** If ticking the component at some future cycle
//!   `t` would change any state (including statistics), then
//!   [`Component::next_event`] must return `Some(e)` with `e <= t`.
//!   Returning an event *earlier* than necessary is safe — the kernel
//!   executes a step that turns out to be a no-op, exactly like the dense
//!   loop always did — but returning one *late* silently diverges the
//!   simulation, and returning `None` while work is pending hangs it.
//! * **Quiescent ticks are no-ops.** Ticking the component on a cycle
//!   with no pending event must not change any simulation state, so that
//!   skipping such cycles is unobservable.
//!
//! A returned cycle at or before the caller's `now` means "can progress
//! on the very next cycle"; the kernel clamps every event to `now + 1`.

use crate::Cycle;

/// A simulation unit with its own notion of pending work.
pub trait Component {
    /// The earliest cycle at which this component can make progress, or
    /// `None` when it has nothing in flight. Values at or before the
    /// caller's current cycle mean "immediately" (the caller clamps to
    /// `now + 1`). Being conservatively early is safe; being late is a
    /// simulation-divergence bug, and `None` with pending work is a hang.
    fn next_event(&self) -> Option<Cycle>;

    /// Whether the component holds no in-flight work at all. The kernel
    /// derives end-of-simulation from "every port empty and every
    /// component idle", so under-reporting here hangs the run and
    /// over-reporting truncates it.
    fn is_idle(&self) -> bool;
}
