//! Hardware and request identifiers.

use std::fmt;

/// Number of SIMT lanes (threads) per warp. Fixed at 32, matching NVIDIA
/// hardware and the paper's PW-Warp sizing (32 page-walk threads per SM).
pub const LANES_PER_WARP: usize = 32;

macro_rules! small_id {
    ($(#[$doc:meta])* $name:ident($ty:ty)) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub $ty);

        impl $name {
            /// Creates the id from a raw index.
            pub const fn new(v: $ty) -> Self {
                Self(v)
            }

            /// Raw index value.
            pub const fn value(self) -> $ty {
                self.0
            }

            /// Raw index as `usize` for container indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<$ty> for $name {
            fn from(v: $ty) -> Self {
                Self(v)
            }
        }
    };
}

small_id!(
    /// Index of a Streaming Multiprocessor (SM). The paper's configuration
    /// has 46 SMs (RTX-3070-like).
    SmId(u16)
);

small_id!(
    /// Index of a warp *within one SM* (up to 48 per SM in Table 3).
    WarpId(u16)
);

small_id!(
    /// Index of a SIMT lane within a warp (0..32).
    LaneId(u8)
);

small_id!(
    /// Index of a hardware page table walker within the PTW pool.
    WalkerId(u16)
);

small_id!(
    /// Index of a DRAM channel (16 in the GDDR6 configuration).
    ChannelId(u16)
);

small_id!(
    /// Address-space identifier: which tenant (concurrent process) a
    /// translation belongs to. Every translation-path key — TLB tags on
    /// both levels, PWC prefixes, MSHR and In-TLB MSHR tags, walk
    /// ownership records — carries the ASID, so one tenant's entries can
    /// never alias or shoot down another's. Single-tenant runs use
    /// [`Asid::ZERO`] everywhere.
    Asid(u16)
);

impl Asid {
    /// The single-tenant / default address space.
    pub const ZERO: Asid = Asid(0);
}

macro_rules! req_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u64);

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "#{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "#{}", self.0)
            }
        }
    };
}

req_id!(
    /// Unique id of one address-translation request as it travels from an
    /// SM's coalescer through the TLB hierarchy and (on a miss) a page walk.
    XlatId
);

req_id!(
    /// Unique id of one memory request in the cache/DRAM hierarchy.
    MemReqId
);

req_id!(
    /// Unique id of one warp memory instruction (a warp instruction fans out
    /// into several translation and memory requests which all carry it).
    InstrId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_ids_index_containers() {
        let sm = SmId::new(7);
        let v = [0u8; 16];
        assert_eq!(v[sm.index()], 0);
        assert_eq!(sm.value(), 7);
    }

    #[test]
    fn ids_display_compactly() {
        assert_eq!(format!("{}", SmId::new(3)), "3");
        assert_eq!(format!("{:?}", XlatId(9)), "XlatId#9");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(MemReqId(1));
        s.insert(MemReqId(1));
        s.insert(MemReqId(2));
        assert_eq!(s.len(), 2);
        assert!(WarpId::new(1) < WarpId::new(2));
    }
}
