//! Simulation time, measured in GPU core cycles.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in GPU core clock cycles (1500 MHz in the
/// paper's Table 3 configuration).
///
/// `Cycle` is a *point*; durations are plain `u64` cycle counts, so
/// `Cycle + u64 = Cycle` and `Cycle - Cycle = u64`.
///
/// # Example
///
/// ```
/// use swgpu_types::Cycle;
/// let start = Cycle::new(100);
/// let end = start + 40;
/// assert_eq!(end - start, 40);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero, the start of simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle point from a raw count.
    pub const fn new(value: u64) -> Self {
        Cycle(value)
    }

    /// Raw cycle count since simulation start.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Advances this point by one cycle, returning the new point.
    #[must_use]
    pub const fn next(self) -> Cycle {
        Cycle(self.0 + 1)
    }

    /// Duration since `earlier`, saturating to zero if `earlier` is in the
    /// future (useful for defensive latency accounting).
    pub const fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The later of two time points.
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }
}

impl fmt::Debug for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cycle({})", self.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    fn sub(self, rhs: Cycle) -> u64 {
        self.0
            .checked_sub(rhs.0)
            .expect("cycle subtraction went negative")
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Cycle {
        Cycle(v)
    }
}

impl From<Cycle> for u64 {
    fn from(c: Cycle) -> u64 {
        c.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let c = Cycle::new(5);
        assert_eq!((c + 7) - c, 7);
        assert_eq!(c.next().value(), 6);
    }

    #[test]
    fn since_saturates() {
        let early = Cycle::new(3);
        let late = Cycle::new(10);
        assert_eq!(late.since(early), 7);
        assert_eq!(early.since(late), 0);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn sub_panics_on_time_reversal() {
        let _ = Cycle::new(1) - Cycle::new(2);
    }

    #[test]
    fn max_picks_later() {
        assert_eq!(Cycle::new(4).max(Cycle::new(9)), Cycle::new(9));
    }
}
