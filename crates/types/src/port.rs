//! [`Port`] — the typed message channel between pipeline stages.
//!
//! A port is a [`DelayQueue`] with the two usage patterns the simulator
//! actually has, made explicit:
//!
//! * **Latency mode** ([`Port::send`] / [`Port::send_after`] +
//!   [`Port::recv`]): messages become visible a fixed number of cycles
//!   after they were sent — the 80-cycle L2 TLB hop, translation
//!   returns, the simulated driver's replay latency.
//! * **FIFO mode** ([`Port::push_back`] + [`Port::front`] /
//!   [`Port::pop_front`] / [`Port::take`]): a plain backlog (retry
//!   queues, the dispatch queue). Entries are pushed with ready time
//!   zero, so heap order degenerates to insertion order and the port
//!   reports itself permanently ready — which is exactly right: a
//!   non-empty backlog must keep the kernel stepping every cycle, just
//!   as the dense loop polled it every cycle.
//!
//! Ports implement [`Component`], so the kernel's drain/wake derivation
//! treats them uniformly with the timed components they connect.

use crate::{Component, Cycle, DelayQueue};

/// A typed, latency-aware channel between two simulation stages.
///
/// # Example
///
/// ```
/// use swgpu_types::{Cycle, Port};
///
/// let mut p = Port::new();
/// p.send_after(Cycle::ZERO, 3, "hop");
/// assert_eq!(p.recv(Cycle::new(2)), None);
/// assert_eq!(p.next_ready(), Some(Cycle::new(3)));
/// assert_eq!(p.recv(Cycle::new(3)), Some("hop"));
/// ```
#[derive(Debug)]
pub struct Port<T> {
    q: DelayQueue<T>,
}

impl<T> Default for Port<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Port<T> {
    /// Creates an empty port.
    pub fn new() -> Self {
        Self {
            q: DelayQueue::new(),
        }
    }

    /// Latency mode: schedules `item` to become visible at cycle `ready`.
    pub fn send(&mut self, ready: Cycle, item: T) {
        self.q.push(ready, item);
    }

    /// Latency mode: schedules `item` to become visible `delay` cycles
    /// after `now`.
    pub fn send_after(&mut self, now: Cycle, delay: u64, item: T) {
        self.q.push_after(now, delay, item);
    }

    /// FIFO mode: appends `item` to the backlog (always ready).
    pub fn push_back(&mut self, item: T) {
        self.q.push(Cycle::ZERO, item);
    }

    /// Latency mode: removes and returns the earliest item that is ready
    /// at `now`, if any. Same-cycle items come out in insertion order.
    pub fn recv(&mut self, now: Cycle) -> Option<T> {
        self.q.pop_ready(now)
    }

    /// FIFO mode: a reference to the head of the backlog.
    pub fn front(&self) -> Option<&T> {
        self.q.peek()
    }

    /// FIFO mode: removes and returns the head of the backlog.
    pub fn pop_front(&mut self) -> Option<T> {
        self.q.pop_front()
    }

    /// FIFO mode: removes and returns up to `n` items from the head of
    /// the backlog (the budgeted-retry drain pattern).
    pub fn take(&mut self, n: usize) -> Vec<T> {
        let n = n.min(self.q.len());
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.extend(self.q.pop_front());
        }
        out
    }

    /// The ready time of the earliest item, if any. FIFO-mode entries
    /// report cycle zero, i.e. "immediately".
    pub fn next_ready(&self) -> Option<Cycle> {
        self.q.next_ready()
    }

    /// Number of items in flight (ready or not).
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether no items are in flight.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

impl<T> Component for Port<T> {
    fn next_event(&self) -> Option<Cycle> {
        self.q.next_ready()
    }

    fn is_idle(&self) -> bool {
        self.q.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_mode_delivers_on_schedule() {
        let mut p = Port::new();
        p.send(Cycle::new(10), "late");
        p.send_after(Cycle::new(1), 4, "early");
        assert_eq!(p.next_ready(), Some(Cycle::new(5)));
        assert_eq!(p.recv(Cycle::new(4)), None);
        assert_eq!(p.recv(Cycle::new(5)), Some("early"));
        assert_eq!(p.recv(Cycle::new(10)), Some("late"));
        assert!(p.is_empty());
    }

    #[test]
    fn fifo_mode_preserves_insertion_order() {
        let mut p = Port::new();
        for i in 0..5 {
            p.push_back(i);
        }
        assert_eq!(p.front(), Some(&0));
        assert_eq!(p.pop_front(), Some(0));
        assert_eq!(p.take(2), vec![1, 2]);
        assert_eq!(p.take(99), vec![3, 4]);
        assert!(p.pop_front().is_none());
    }

    #[test]
    fn fifo_entries_are_immediately_ready() {
        let mut p = Port::new();
        p.push_back("backlog");
        assert_eq!(p.next_ready(), Some(Cycle::ZERO));
        assert_eq!(Component::next_event(&p), Some(Cycle::ZERO));
        assert!(!Component::is_idle(&p));
    }

    #[test]
    fn component_view_matches_queue_state() {
        let mut p = Port::new();
        assert!(Component::is_idle(&p));
        assert_eq!(Component::next_event(&p), None);
        p.send(Cycle::new(7), ());
        assert!(!Component::is_idle(&p));
        assert_eq!(Component::next_event(&p), Some(Cycle::new(7)));
        assert_eq!(p.len(), 1);
    }
}
