//! A deterministic delay queue — the basic plumbing between pipeline stages.
//!
//! Components in the simulator communicate through message queues where each
//! message becomes visible only after a fixed latency (e.g. the 80-cycle
//! L2 TLB access, or the SM↔L2-TLB communication the paper charges
//! SoftWalker for). [`DelayQueue`] keeps messages ordered by ready time and,
//! for equal ready times, by insertion order, so simulations are fully
//! deterministic.

use crate::Cycle;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<T> {
    ready: Cycle,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.ready == other.ready && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest ready time (then
        // the lowest sequence number) is popped first.
        other
            .ready
            .cmp(&self.ready)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A queue whose items become visible at a scheduled cycle.
///
/// # Example
///
/// ```
/// use swgpu_types::{Cycle, DelayQueue};
///
/// let mut q = DelayQueue::new();
/// q.push(Cycle::new(10), "late");
/// q.push(Cycle::new(5), "early");
/// assert_eq!(q.pop_ready(Cycle::new(4)), None);
/// assert_eq!(q.pop_ready(Cycle::new(7)), Some("early"));
/// assert_eq!(q.pop_ready(Cycle::new(7)), None);
/// assert_eq!(q.pop_ready(Cycle::new(10)), Some("late"));
/// ```
#[derive(Debug)]
pub struct DelayQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> Default for DelayQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> DelayQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `item` to become visible at cycle `ready`.
    pub fn push(&mut self, ready: Cycle, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { ready, seq, item });
    }

    /// Schedules `item` to become visible `delay` cycles after `now`.
    pub fn push_after(&mut self, now: Cycle, delay: u64, item: T) {
        self.push(now + delay, item);
    }

    /// Removes and returns the earliest item that is ready at `now`, if any.
    /// Items scheduled for the same cycle come out in insertion order.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        if self.heap.peek().is_some_and(|e| e.ready <= now) {
            self.heap.pop().map(|e| e.item)
        } else {
            None
        }
    }

    /// The ready time of the earliest item, if the queue is non-empty.
    pub fn next_ready(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.ready)
    }

    /// A reference to the earliest item (by ready time, then insertion
    /// order), regardless of whether it is ready yet.
    pub fn peek(&self) -> Option<&T> {
        self.heap.peek().map(|e| &e.item)
    }

    /// Removes and returns the earliest item regardless of readiness.
    /// Together with zero-ready pushes this turns the queue into a plain
    /// FIFO (see [`crate::Port::push_back`]).
    pub fn pop_front(&mut self) -> Option<T> {
        self.heap.pop().map(|e| e.item)
    }

    /// Number of items in flight (ready or not).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no items are in flight.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drains every item regardless of readiness (used at teardown / in
    /// tests). Items come out in (ready, insertion) order.
    pub fn drain_all(&mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(e) = self.heap.pop() {
            out.push(e.item);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = DelayQueue::new();
        let t = Cycle::new(3);
        q.push(t, 1);
        q.push(t, 2);
        q.push(t, 3);
        assert_eq!(q.pop_ready(t), Some(1));
        assert_eq!(q.pop_ready(t), Some(2));
        assert_eq!(q.pop_ready(t), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn respects_ready_times() {
        let mut q = DelayQueue::new();
        q.push_after(Cycle::ZERO, 5, "a");
        q.push_after(Cycle::ZERO, 2, "b");
        assert_eq!(q.next_ready(), Some(Cycle::new(2)));
        assert_eq!(q.pop_ready(Cycle::new(1)), None);
        assert_eq!(q.pop_ready(Cycle::new(2)), Some("b"));
        assert_eq!(q.pop_ready(Cycle::new(4)), None);
        assert_eq!(q.pop_ready(Cycle::new(5)), Some("a"));
    }

    #[test]
    fn drain_all_orders_by_ready_then_seq() {
        let mut q = DelayQueue::new();
        q.push(Cycle::new(9), "z");
        q.push(Cycle::new(1), "a");
        q.push(Cycle::new(1), "b");
        assert_eq!(q.drain_all(), vec!["a", "b", "z"]);
    }

    #[test]
    fn peek_and_pop_front_ignore_readiness() {
        let mut q = DelayQueue::new();
        q.push(Cycle::new(100), "late");
        q.push(Cycle::new(5), "early");
        assert_eq!(q.peek(), Some(&"early"));
        assert_eq!(q.pop_front(), Some("early"));
        assert_eq!(q.pop_front(), Some("late"));
        assert_eq!(q.pop_front(), None);
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn len_tracks_in_flight() {
        let mut q = DelayQueue::new();
        assert!(q.is_empty());
        q.push(Cycle::new(1), ());
        q.push(Cycle::new(2), ());
        assert_eq!(q.len(), 2);
        q.pop_ready(Cycle::new(5));
        assert_eq!(q.len(), 1);
    }
}
