//! Virtual and physical address newtypes.
//!
//! The paper assumes a 49-bit virtual and 47-bit physical address space
//! (NVIDIA Pascal MMU format, [60] in the paper). We store both as `u64`
//! and expose the architectural widths as constants so page-table code can
//! validate canonical addresses.

use std::fmt;
use std::ops::{Add, Sub};

/// Architectural virtual address width in bits (49, per the Pascal MMU
/// format the paper references).
pub const VIRT_ADDR_BITS: u32 = 49;

/// Architectural physical address width in bits (47).
pub const PHYS_ADDR_BITS: u32 = 47;

macro_rules! addr_newtype {
    ($(#[$doc:meta])* $name:ident, $bits:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u64);

        impl $name {
            /// Number of architectural bits in this address kind.
            pub const BITS: u32 = $bits;

            /// Creates an address from a raw value.
            ///
            /// The value is masked to the architectural width so arithmetic
            /// that overflows the address space wraps inside it instead of
            /// silently escaping.
            pub const fn new(value: u64) -> Self {
                Self(value & ((1u64 << $bits) - 1))
            }

            /// Returns the raw address value.
            pub const fn value(self) -> u64 {
                self.0
            }

            /// Returns `true` if the raw value fits the architectural width
            /// without masking.
            pub const fn is_canonical(value: u64) -> bool {
                value < (1u64 << $bits)
            }

            /// Aligns the address down to a power-of-two boundary.
            ///
            /// # Panics
            ///
            /// Panics if `align` is not a power of two.
            pub fn align_down(self, align: u64) -> Self {
                assert!(align.is_power_of_two(), "alignment must be a power of two");
                Self(self.0 & !(align - 1))
            }

            /// Offset of the address within an `align`-byte block.
            ///
            /// # Panics
            ///
            /// Panics if `align` is not a power of two.
            pub fn offset_in(self, align: u64) -> u64 {
                assert!(align.is_power_of_two(), "alignment must be a power of two");
                self.0 & (align - 1)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl From<$name> for u64 {
            fn from(a: $name) -> u64 {
                a.0
            }
        }

        impl Add<u64> for $name {
            type Output = $name;
            fn add(self, rhs: u64) -> $name {
                $name::new(self.0.wrapping_add(rhs))
            }
        }

        impl Sub<u64> for $name {
            type Output = $name;
            fn sub(self, rhs: u64) -> $name {
                $name::new(self.0.wrapping_sub(rhs))
            }
        }
    };
}

addr_newtype!(
    /// A 49-bit GPU virtual address.
    ///
    /// # Example
    ///
    /// ```
    /// use swgpu_types::VirtAddr;
    /// let va = VirtAddr::new(0x1_0000_1234);
    /// assert_eq!(va.offset_in(0x1000), 0x234);
    /// ```
    VirtAddr,
    VIRT_ADDR_BITS
);

addr_newtype!(
    /// A 47-bit GPU physical address.
    ///
    /// # Example
    ///
    /// ```
    /// use swgpu_types::PhysAddr;
    /// let pa = PhysAddr::new(0xdead_beef);
    /// assert_eq!(pa.align_down(0x100).value(), 0xdead_be00);
    /// ```
    PhysAddr,
    PHYS_ADDR_BITS
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_to_architectural_width() {
        let va = VirtAddr::new(u64::MAX);
        assert_eq!(va.value(), (1u64 << VIRT_ADDR_BITS) - 1);
        let pa = PhysAddr::new(u64::MAX);
        assert_eq!(pa.value(), (1u64 << PHYS_ADDR_BITS) - 1);
    }

    #[test]
    fn canonical_check() {
        assert!(VirtAddr::is_canonical(0));
        assert!(VirtAddr::is_canonical((1 << 49) - 1));
        assert!(!VirtAddr::is_canonical(1 << 49));
        assert!(!PhysAddr::is_canonical(1 << 47));
    }

    #[test]
    fn align_and_offset_are_complementary() {
        let va = VirtAddr::new(0x1234_5678);
        for align in [64u64, 128, 1 << 16, 1 << 21] {
            assert_eq!(
                va.align_down(align).value() + va.offset_in(align),
                va.value()
            );
        }
    }

    #[test]
    fn arithmetic_wraps_within_address_space() {
        let top = VirtAddr::new((1 << 49) - 1);
        assert_eq!((top + 1).value(), 0);
        let zero = VirtAddr::new(0);
        assert_eq!((zero - 1).value(), (1 << 49) - 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn align_down_rejects_non_power_of_two() {
        VirtAddr::new(0x1000).align_down(3);
    }

    #[test]
    fn debug_and_display_are_hex() {
        let pa = PhysAddr::new(0xabc);
        assert_eq!(format!("{pa}"), "0xabc");
        assert_eq!(format!("{pa:?}"), "PhysAddr(0xabc)");
        assert_eq!(format!("{pa:x}"), "abc");
        assert_eq!(format!("{pa:X}"), "ABC");
    }
}
