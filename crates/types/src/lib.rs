//! Common newtypes, identifiers and utility containers shared by every crate
//! of the SoftWalker reproduction.
//!
//! The simulator models a GPU address-translation pipeline, so almost every
//! component speaks in terms of virtual/physical addresses, page numbers,
//! cycles and hardware identifiers. Keeping these as distinct newtypes (per
//! C-NEWTYPE) prevents the classic "passed a VPN where a physical frame was
//! expected" class of bugs that plagues address-translation code.
//!
//! # Example
//!
//! ```
//! use swgpu_types::{PageSize, VirtAddr};
//!
//! let page = PageSize::Size64K;
//! let va = VirtAddr::new(0x1_2345_6789);
//! let vpn = page.vpn_of(va);
//! assert_eq!(page.base_of_vpn(vpn).value() + page.offset_of(va), va.value());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod component;
mod cycle;
pub mod fault;
mod ids;
pub mod mm;
pub mod obs;
mod page;
mod port;
mod pte;
mod queue;

pub use addr::{PhysAddr, VirtAddr};
pub use component::Component;
pub use cycle::Cycle;
pub use fault::{data_checksum, FaultInjectionStats, FaultInjector, FaultPlan, MmFaultStats};
pub use ids::{
    Asid, ChannelId, InstrId, LaneId, MemReqId, SmId, WalkerId, WarpId, XlatId, LANES_PER_WARP,
};
pub use mm::{MmConfig, MmEvictPolicy, MmStats};
pub use obs::PteReadEvent;
pub use page::{PageSize, Pfn, Vpn};
pub use port::Port;
pub use pte::Pte;
pub use queue::DelayQueue;

/// Monotonic id generator used by components that must mint unique request
/// identifiers ([`XlatId`], [`MemReqId`], [`InstrId`]).
///
/// # Example
///
/// ```
/// use swgpu_types::IdGen;
/// let mut gen = IdGen::new();
/// assert_ne!(gen.next_raw(), gen.next_raw());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdGen {
    next: u64,
}

impl IdGen {
    /// Creates a generator starting at zero.
    pub fn new() -> Self {
        Self { next: 0 }
    }

    /// Returns the next raw id value, advancing the counter.
    pub fn next_raw(&mut self) -> u64 {
        let v = self.next;
        self.next = self.next.wrapping_add(1);
        v
    }

    /// Mints a fresh translation-request id.
    pub fn next_xlat(&mut self) -> XlatId {
        XlatId(self.next_raw())
    }

    /// Mints a fresh memory-request id.
    pub fn next_mem(&mut self) -> MemReqId {
        MemReqId(self.next_raw())
    }

    /// Mints a fresh warp-instruction id.
    pub fn next_instr(&mut self) -> InstrId {
        InstrId(self.next_raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_gen_is_monotonic() {
        let mut g = IdGen::new();
        let a = g.next_xlat();
        let b = g.next_xlat();
        assert!(b.0 > a.0);
    }

    #[test]
    fn id_gen_mixes_kinds_without_reuse() {
        let mut g = IdGen::new();
        let x = g.next_xlat().0;
        let m = g.next_mem().0;
        let i = g.next_instr().0;
        assert_ne!(x, m);
        assert_ne!(m, i);
    }
}
