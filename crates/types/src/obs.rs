//! Minimal observability event types shared by the walkers.
//!
//! The observability layer proper lives in `swgpu-obs`, which sits *above*
//! the component crates in the dependency graph. The walkers (hardware PTW
//! pool, PW Warps) therefore cannot talk to the recorder directly; instead
//! they buffer these small cycle-stamped events when observation is armed,
//! and the full simulator drains the buffers into the recorder each cycle.
//! When observation is off the buffers stay empty and nothing is pushed —
//! the zero-overhead-when-disabled contract.

use crate::{Cycle, Vpn};

/// A single page-table-entry read observed at a walker, stamped with the
/// radix level being decoded (3 = root directory, 0 = leaf). Produced by
/// `swgpu_pt::read_pte_observed` call sites in both walker implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PteReadEvent {
    /// The VPN whose walk performed the read.
    pub vpn: Vpn,
    /// Radix level of the entry (LEAF_LEVEL = 0).
    pub level: u8,
    /// Cycle at which the read's data became available.
    pub at: Cycle,
}
