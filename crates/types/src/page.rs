//! Page sizes, virtual page numbers and physical frame numbers.

use crate::{PhysAddr, VirtAddr};
use std::fmt;

/// Supported translation granularities.
///
/// The paper uses 64 KB as the base GPU page size ("widely supported by
/// conventional GPUs") and evaluates 2 MB large pages in the sensitivity
/// study; 4 KB is included for completeness of the substrate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PageSize {
    /// 4 KiB pages (CPU-style base pages).
    Size4K,
    /// 64 KiB pages — the paper's default GPU page size.
    #[default]
    Size64K,
    /// 2 MiB large pages — used in the large-page sensitivity study.
    Size2M,
}

impl PageSize {
    /// Page size in bytes.
    pub const fn bytes(self) -> u64 {
        1u64 << self.offset_bits()
    }

    /// Number of page-offset bits.
    pub const fn offset_bits(self) -> u32 {
        match self {
            PageSize::Size4K => 12,
            PageSize::Size64K => 16,
            PageSize::Size2M => 21,
        }
    }

    /// Virtual page number of an address at this granularity.
    pub fn vpn_of(self, va: VirtAddr) -> Vpn {
        Vpn(va.value() >> self.offset_bits())
    }

    /// Physical frame number of an address at this granularity.
    pub fn pfn_of(self, pa: PhysAddr) -> Pfn {
        Pfn(pa.value() >> self.offset_bits())
    }

    /// First virtual address of a page.
    pub fn base_of_vpn(self, vpn: Vpn) -> VirtAddr {
        VirtAddr::new(vpn.0 << self.offset_bits())
    }

    /// First physical address of a frame.
    pub fn base_of_pfn(self, pfn: Pfn) -> PhysAddr {
        PhysAddr::new(pfn.0 << self.offset_bits())
    }

    /// Byte offset of an address within its page.
    pub fn offset_of(self, va: VirtAddr) -> u64 {
        va.value() & (self.bytes() - 1)
    }

    /// Translates a full virtual address given the frame that its page maps
    /// to (keeps the page offset).
    pub fn translate(self, va: VirtAddr, pfn: Pfn) -> PhysAddr {
        PhysAddr::new(self.base_of_pfn(pfn).value() | self.offset_of(va))
    }

    /// Number of pages needed to cover `bytes` bytes (rounded up).
    pub fn pages_for(self, bytes: u64) -> u64 {
        bytes.div_ceil(self.bytes())
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Size4K => write!(f, "4KB"),
            PageSize::Size64K => write!(f, "64KB"),
            PageSize::Size2M => write!(f, "2MB"),
        }
    }
}

/// A virtual page number. Meaningful only together with a [`PageSize`].
///
/// # Example
///
/// ```
/// use swgpu_types::{PageSize, VirtAddr};
/// let vpn = PageSize::Size64K.vpn_of(VirtAddr::new(0x2_0000));
/// assert_eq!(vpn.value(), 2);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vpn(pub u64);

/// A physical frame number. Meaningful only together with a [`PageSize`].
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pfn(pub u64);

macro_rules! pn_impls {
    ($name:ident) => {
        impl $name {
            /// Creates a page/frame number from a raw value.
            pub const fn new(v: u64) -> Self {
                Self(v)
            }

            /// Raw page/frame number.
            pub const fn value(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                Self(v)
            }
        }
    };
}

pn_impls!(Vpn);
pn_impls!(Pfn);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_paper() {
        assert_eq!(PageSize::Size64K.bytes(), 64 * 1024);
        assert_eq!(PageSize::Size2M.bytes(), 2 * 1024 * 1024);
        assert_eq!(PageSize::Size4K.bytes(), 4096);
    }

    #[test]
    fn vpn_round_trip() {
        for size in [PageSize::Size4K, PageSize::Size64K, PageSize::Size2M] {
            let va = VirtAddr::new(0x1_2345_6789);
            let vpn = size.vpn_of(va);
            let rebuilt = size.base_of_vpn(vpn).value() + size.offset_of(va);
            assert_eq!(rebuilt, va.value(), "{size}");
        }
    }

    #[test]
    fn translate_preserves_offset() {
        let size = PageSize::Size64K;
        let va = VirtAddr::new(0x3_0000 + 0x123);
        let pa = size.translate(va, Pfn::new(7));
        assert_eq!(pa.value(), 7 * 0x1_0000 + 0x123);
    }

    #[test]
    fn pages_for_rounds_up() {
        let s = PageSize::Size64K;
        assert_eq!(s.pages_for(0), 0);
        assert_eq!(s.pages_for(1), 1);
        assert_eq!(s.pages_for(64 * 1024), 1);
        assert_eq!(s.pages_for(64 * 1024 + 1), 2);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(PageSize::Size64K.to_string(), "64KB");
        assert_eq!(Vpn::new(0x1f).to_string(), "0x1f");
    }
}
