//! Configuration and counters for the simulated driver/OS memory manager.
//!
//! With [`MmConfig::enabled`] false (the default) the manager does not
//! exist: the page table is fully prebuilt before cycle 0 and every
//! counter stays zero, so stats JSON is byte-identical to a build without
//! the subsystem. Enabled, pages are populated on *first touch*: a
//! translation that misses the page table becomes a **major fault**,
//! serviced by the simulated driver after [`MmConfig::fill_latency`]
//! cycles and then replayed through the normal walk machinery. On top of
//! that sit Mosaic-style transparent coalescing of fully-populated
//! contiguous base-page runs into 64 KiB / 2 MiB mappings (splintered
//! again when a constituent page is evicted) and an LRU-ish eviction
//! policy once the resident footprint exceeds a device-memory budget
//! (oversubscription).

/// Which resident page the manager evicts when the device-memory budget
/// is exceeded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MmEvictPolicy {
    /// Fill order: the page resident longest is evicted first,
    /// regardless of use. The historical (and default) policy — runs
    /// configured with it are cycle-identical to builds that predate the
    /// policy axis.
    #[default]
    Fifo,
    /// Clock (second-chance) LRU approximation: each translation
    /// delivery sets the page's reference bit; the evictor skips (and
    /// clears) referenced pages until it finds an unreferenced victim.
    Lru,
}

/// Knobs of the demand-paging memory manager. Carried by `GpuConfig`, so
/// an enabled manager participates in the config fingerprint (and a
/// disabled one contributes nothing — run-cache keys are unchanged).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmConfig {
    /// Master switch. Off = legacy prebuilt page table.
    pub enabled: bool,
    /// Maximum pages resident at once; 0 means unbounded (no eviction).
    /// Models the device-memory budget that oversubscription exceeds.
    pub resident_page_budget: u64,
    /// Cycles the simulated driver takes to populate a page on a major
    /// fault (allocate a frame, install the PTE) before the translation
    /// is replayed.
    pub fill_latency: u64,
    /// Whether fully-populated, physically contiguous base-page runs are
    /// transparently coalesced into 64 KiB / 2 MiB mappings.
    pub coalesce: bool,
    /// Eviction victim selection under budget pressure.
    pub evict: MmEvictPolicy,
}

impl Default for MmConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            resident_page_budget: 0,
            fill_latency: 2_000,
            coalesce: true,
            evict: MmEvictPolicy::Fifo,
        }
    }
}

impl MmConfig {
    /// A demand-paged configuration with default service latency, no
    /// budget (no eviction) and coalescing on.
    pub fn demand_paged() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// Counters kept by the memory manager and surfaced through `SimStats`.
///
/// The conservation invariant is `major_faults == major_replays` once a
/// run drains: every first-touch fault the driver services is replayed
/// and completes — none leak or stall.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MmStats {
    /// First-touch faults serviced by the driver (page populated).
    pub major_faults: u64,
    /// Serviced faults whose replayed translation completed.
    pub major_replays: u64,
    /// Replays of driver fills executed by PW Warps (software modes) —
    /// the paper's handlers servicing fill requests, not just walks.
    pub sw_fill_replays: u64,
    /// Resident pages evicted to stay within the device-memory budget.
    pub evictions: u64,
    /// Base-page runs coalesced into a 64 KiB mapping.
    pub coalesces_64k: u64,
    /// Runs (or 64 KiB groups) coalesced into a 2 MiB mapping.
    pub coalesces_2m: u64,
    /// Coalesced mappings splintered back to base pages by a partial
    /// unmap (eviction of a constituent page).
    pub splinters: u64,
    /// Peak number of simultaneously resident pages.
    pub resident_peak: u64,
}

impl MmStats {
    /// Whether any counter is nonzero (drives conditional JSON emission:
    /// a disabled manager must not add stats keys).
    pub fn any(&self) -> bool {
        *self != Self::default()
    }

    /// Accumulates another instance's counters (peak takes the max).
    pub fn merge(&mut self, other: &MmStats) {
        self.major_faults += other.major_faults;
        self.major_replays += other.major_replays;
        self.sw_fill_replays += other.sw_fill_replays;
        self.evictions += other.evictions;
        self.coalesces_64k += other.coalesces_64k;
        self.coalesces_2m += other.coalesces_2m;
        self.splinters += other.splinters;
        self.resident_peak = self.resident_peak.max(other.resident_peak);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled_and_silent() {
        assert!(!MmConfig::default().enabled);
        assert!(!MmStats::default().any());
    }

    #[test]
    fn demand_paged_enables_with_defaults() {
        let cfg = MmConfig::demand_paged();
        assert!(cfg.enabled);
        assert_eq!(cfg.resident_page_budget, 0);
        assert!(cfg.coalesce);
        assert_eq!(cfg.evict, MmEvictPolicy::Fifo);
    }

    #[test]
    fn merge_sums_counts_and_maxes_peak() {
        let mut a = MmStats {
            major_faults: 2,
            resident_peak: 5,
            ..MmStats::default()
        };
        let b = MmStats {
            major_faults: 3,
            sw_fill_replays: 1,
            resident_peak: 4,
            ..MmStats::default()
        };
        a.merge(&b);
        assert_eq!(a.major_faults, 5);
        assert_eq!(a.sw_fill_replays, 1);
        assert_eq!(a.resident_peak, 5);
        assert!(a.any());
    }
}
