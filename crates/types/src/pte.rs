//! Page table entry encoding.
//!
//! Entries are stored in simulated physical memory as raw 64-bit words so
//! that both the hardware walkers and the software PW Warps read the *same*
//! bytes when traversing the page table — the simulator does not cheat by
//! looking up a side table.

use crate::Pfn;
use std::fmt;

/// A 64-bit page table entry (also used for page *directory* entries at
/// non-leaf levels, where the frame number points at the next-level table).
///
/// Layout (low to high): bit 0 = valid, bits 1..48 = frame number,
/// bits 60..64 = a 4-bit XOR-fold parity of the frame number, remaining
/// bits reserved-as-zero. The parity nibble is what makes *valid but
/// wrong* corruption (a PFN bit flip that leaves the valid bit set)
/// detectable at decode time: [`Pte::valid`] always writes a matching
/// nibble, so any reader can call [`Pte::parity_ok`] on the observed
/// bytes.
///
/// # Example
///
/// ```
/// use swgpu_types::{Pfn, Pte};
/// let pte = Pte::valid(Pfn::new(0x1234));
/// assert!(pte.is_valid());
/// assert_eq!(pte.pfn(), Pfn::new(0x1234));
/// assert_eq!(Pte::from_raw(pte.raw()), pte);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Pte(u64);

const VALID_BIT: u64 = 1;
const PFN_SHIFT: u32 = 1;
const PFN_MASK: u64 = (1u64 << 47) - 1;
const PARITY_SHIFT: u32 = 60;
const PARITY_MASK: u64 = 0xF;

/// 4-bit XOR-fold of a (masked) frame number: every nibble of the PFN is
/// XORed together. Any flip pattern whose own fold is nonzero — in
/// particular any single-bit flip, and any two-adjacent-bit flip inside
/// one nibble — changes the fold and is therefore detectable.
const fn parity_of(pfn: u64) -> u64 {
    let mut x = pfn & PFN_MASK;
    x ^= x >> 32;
    x ^= x >> 16;
    x ^= x >> 8;
    x ^= x >> 4;
    x & PARITY_MASK
}

impl Pte {
    /// Size of an in-memory entry in bytes.
    pub const SIZE_BYTES: u64 = 8;

    /// The canonical invalid (not-present) entry: all zero.
    pub const INVALID: Pte = Pte(0);

    /// Creates a valid entry pointing at `pfn`, with the parity nibble
    /// computed over the stored frame number.
    pub const fn valid(pfn: Pfn) -> Self {
        Pte(VALID_BIT | ((pfn.0 & PFN_MASK) << PFN_SHIFT) | (parity_of(pfn.0) << PARITY_SHIFT))
    }

    /// Reinterprets a raw 64-bit word as an entry.
    pub const fn from_raw(raw: u64) -> Self {
        Pte(raw)
    }

    /// Raw 64-bit encoding, as stored in simulated memory.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Whether the entry maps a page / next-level table.
    pub const fn is_valid(self) -> bool {
        self.0 & VALID_BIT != 0
    }

    /// Frame number the entry points at (the mapped frame for a leaf PTE,
    /// the next-level table frame for a PDE). Zero for invalid entries.
    pub const fn pfn(self) -> Pfn {
        Pfn((self.0 >> PFN_SHIFT) & PFN_MASK)
    }

    /// Whether the stored parity nibble matches the stored frame number.
    /// Invalid entries are vacuously consistent (the canonical invalid
    /// encoding is all-zero). A `false` here means the bytes were
    /// corrupted *after* being written by [`Pte::valid`] — the
    /// valid-but-wrong case the fault layer injects.
    pub const fn parity_ok(self) -> bool {
        !self.is_valid()
            || parity_of((self.0 >> PFN_SHIFT) & PFN_MASK) == (self.0 >> PARITY_SHIFT) & PARITY_MASK
    }
}

impl fmt::Debug for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(f, "Pte(valid, pfn={:#x})", self.pfn().0)
        } else {
            write!(f, "Pte(invalid)")
        }
    }
}

impl fmt::Display for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_is_all_zero() {
        assert_eq!(Pte::INVALID.raw(), 0);
        assert!(!Pte::INVALID.is_valid());
    }

    #[test]
    fn round_trips_pfn() {
        for raw_pfn in [0u64, 1, 0x7fff_ffff, (1 << 47) - 1] {
            let pte = Pte::valid(Pfn::new(raw_pfn));
            assert!(pte.is_valid());
            assert_eq!(pte.pfn().value(), raw_pfn);
            assert_eq!(Pte::from_raw(pte.raw()), pte);
        }
    }

    #[test]
    fn pfn_is_masked_to_47_bits() {
        let pte = Pte::valid(Pfn::new(u64::MAX));
        assert_eq!(pte.pfn().value(), (1 << 47) - 1);
    }

    #[test]
    fn debug_distinguishes_validity() {
        assert_eq!(format!("{:?}", Pte::INVALID), "Pte(invalid)");
        assert!(format!("{:?}", Pte::valid(Pfn::new(2))).contains("valid"));
    }

    #[test]
    fn parity_holds_for_constructed_entries() {
        assert!(Pte::INVALID.parity_ok());
        for raw_pfn in [0u64, 1, 0x1234, 0x7fff_ffff, (1 << 47) - 1] {
            assert!(Pte::valid(Pfn::new(raw_pfn)).parity_ok());
        }
    }

    #[test]
    fn parity_detects_in_nibble_pfn_flips() {
        // Flipping two adjacent bits inside one PFN nibble (the injector's
        // corruption pattern) must always break parity: the fold of the
        // flip mask is 0b11 != 0.
        for raw_pfn in [0u64, 0x5a5a, (1 << 47) - 1] {
            let good = Pte::valid(Pfn::new(raw_pfn));
            for nibble in 0..12u32 {
                let mask = 0b11u64 << (4 * nibble);
                let bad = Pte::from_raw(good.raw() ^ (mask << 1));
                assert!(bad.is_valid(), "flip must stay valid");
                assert!(!bad.parity_ok(), "flip in nibble {nibble} undetected");
            }
        }
    }

    #[test]
    fn parity_detects_single_bit_flips() {
        let good = Pte::valid(Pfn::new(0xdead_beef));
        for bit in 0..47u32 {
            let bad = Pte::from_raw(good.raw() ^ (1u64 << (bit + 1)));
            assert!(!bad.parity_ok(), "single-bit flip at {bit} undetected");
        }
    }
}
