//! Page table entry encoding.
//!
//! Entries are stored in simulated physical memory as raw 64-bit words so
//! that both the hardware walkers and the software PW Warps read the *same*
//! bytes when traversing the page table — the simulator does not cheat by
//! looking up a side table.

use crate::Pfn;
use std::fmt;

/// A 64-bit page table entry (also used for page *directory* entries at
/// non-leaf levels, where the frame number points at the next-level table).
///
/// Layout (low to high): bit 0 = valid, bits 1..48 = frame number,
/// remaining bits reserved-as-zero.
///
/// # Example
///
/// ```
/// use swgpu_types::{Pfn, Pte};
/// let pte = Pte::valid(Pfn::new(0x1234));
/// assert!(pte.is_valid());
/// assert_eq!(pte.pfn(), Pfn::new(0x1234));
/// assert_eq!(Pte::from_raw(pte.raw()), pte);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Pte(u64);

const VALID_BIT: u64 = 1;
const PFN_SHIFT: u32 = 1;
const PFN_MASK: u64 = (1u64 << 47) - 1;

impl Pte {
    /// Size of an in-memory entry in bytes.
    pub const SIZE_BYTES: u64 = 8;

    /// The canonical invalid (not-present) entry: all zero.
    pub const INVALID: Pte = Pte(0);

    /// Creates a valid entry pointing at `pfn`.
    pub const fn valid(pfn: Pfn) -> Self {
        Pte(VALID_BIT | ((pfn.0 & PFN_MASK) << PFN_SHIFT))
    }

    /// Reinterprets a raw 64-bit word as an entry.
    pub const fn from_raw(raw: u64) -> Self {
        Pte(raw)
    }

    /// Raw 64-bit encoding, as stored in simulated memory.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Whether the entry maps a page / next-level table.
    pub const fn is_valid(self) -> bool {
        self.0 & VALID_BIT != 0
    }

    /// Frame number the entry points at (the mapped frame for a leaf PTE,
    /// the next-level table frame for a PDE). Zero for invalid entries.
    pub const fn pfn(self) -> Pfn {
        Pfn((self.0 >> PFN_SHIFT) & PFN_MASK)
    }
}

impl fmt::Debug for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(f, "Pte(valid, pfn={:#x})", self.pfn().0)
        } else {
            write!(f, "Pte(invalid)")
        }
    }
}

impl fmt::Display for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_is_all_zero() {
        assert_eq!(Pte::INVALID.raw(), 0);
        assert!(!Pte::INVALID.is_valid());
    }

    #[test]
    fn round_trips_pfn() {
        for raw_pfn in [0u64, 1, 0x7fff_ffff, (1 << 47) - 1] {
            let pte = Pte::valid(Pfn::new(raw_pfn));
            assert!(pte.is_valid());
            assert_eq!(pte.pfn().value(), raw_pfn);
            assert_eq!(Pte::from_raw(pte.raw()), pte);
        }
    }

    #[test]
    fn pfn_is_masked_to_47_bits() {
        let pte = Pte::valid(Pfn::new(u64::MAX));
        assert_eq!(pte.pfn().value(), (1 << 47) - 1);
    }

    #[test]
    fn debug_distinguishes_validity() {
        assert_eq!(format!("{:?}", Pte::INVALID), "Pte(invalid)");
        assert!(format!("{:?}", Pte::valid(Pfn::new(2))).contains("valid"));
    }
}
