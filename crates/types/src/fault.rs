//! Deterministic fault injection for the translation pipeline.
//!
//! The simulator's fault path (invalid PTE → `FFB`/fault buffer → UVM
//! driver repair → replay) is only exercisable if something can *make* a
//! walk fail. [`FaultPlan`] describes a seeded, per-site fault workload:
//! transient PTE corruption at page-table reads, dropped or delayed memory
//! responses for walker traffic, and stuck PW threads. All rates default
//! to zero, in which case every injection site is a provable no-op — no
//! RNG is constructed and no random numbers are drawn, so a zero-rate run
//! is cycle- and stats-identical to a build without the layer.
//!
//! Each injection site owns a [`FaultInjector`] seeded from
//! `plan.seed ^ SITE_SALT (^ instance)`, so outcomes are independent of
//! call interleaving across sites and fully reproducible for a fixed seed.

/// Per-site fault rates, recovery parameters and the RNG seed.
///
/// Rates are probabilities in `[0, 1]` evaluated independently at each
/// eligible event. The plan is carried by `GpuConfig`, so it participates
/// in the config fingerprint and therefore in run-cache keys.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every injection-site RNG (salted per site).
    pub seed: u64,
    /// Probability that a page-table entry read returns a transiently
    /// corrupted (invalid) entry instead of the real bytes.
    pub pte_corrupt_rate: f64,
    /// Probability that a page-table entry read returns a *valid but
    /// wrong* entry: PFN bits flipped while the valid bit stays set. The
    /// reader can only notice by verifying the PTE's parity nibble at
    /// decode — the silent-corruption blind spot this mode exists to
    /// exercise.
    pub pte_silent_corrupt_rate: f64,
    /// Probability that a completed page-table memory response is dropped
    /// (the requester's watchdog must re-issue it).
    pub mem_drop_rate: f64,
    /// Probability that a page-table DRAM access is delayed by
    /// [`FaultPlan::mem_delay_cycles`].
    pub mem_delay_rate: f64,
    /// Extra latency applied to delayed accesses.
    pub mem_delay_cycles: u64,
    /// Probability that a PW thread wedges when a walk is assigned to it
    /// (recovered by the watchdog restarting the walk).
    pub stuck_thread_rate: f64,
    /// Base per-walk watchdog timeout; retry `k` waits
    /// `watchdog_cycles << k` (exponential backoff).
    pub watchdog_cycles: u64,
    /// Retries before a walk is escalated to the fault buffer / driver.
    pub max_retries: u32,
    /// Cycles the simulated UVM driver takes to repair a PTE and trigger
    /// the replay of an escalated translation.
    pub driver_latency: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            pte_corrupt_rate: 0.0,
            pte_silent_corrupt_rate: 0.0,
            mem_drop_rate: 0.0,
            mem_delay_rate: 0.0,
            mem_delay_cycles: 500,
            stuck_thread_rate: 0.0,
            watchdog_cycles: 5_000,
            max_retries: 3,
            driver_latency: 2_000,
        }
    }
}

impl FaultPlan {
    /// Whether any injection site can fire. When false the entire layer
    /// is inert and the simulator behaves exactly as if it did not exist.
    pub fn enabled(&self) -> bool {
        self.pte_corrupt_rate > 0.0
            || self.pte_silent_corrupt_rate > 0.0
            || self.mem_drop_rate > 0.0
            || self.mem_delay_rate > 0.0
            || self.stuck_thread_rate > 0.0
    }

    /// Watchdog deadline delta for a walk that has already retried
    /// `retries` times (exponential backoff, saturating shift).
    pub fn backoff_cycles(&self, retries: u32) -> u64 {
        let shift = retries.min(16);
        self.watchdog_cycles.saturating_mul(1u64 << shift)
    }
}

/// Site salts: injectors at different sites must draw independent
/// streams even though they share the plan seed.
pub mod site {
    /// Page-table entry reads by the hardware PTW pool.
    pub const PTW_PTE: u64 = 0x9e37_79b9_7f4a_7c15;
    /// Page-table entry reads by a PW Warp (salted again by SM index).
    pub const PW_WARP_PTE: u64 = 0xc2b2_ae3d_27d4_eb4f;
    /// L2 data cache response drops.
    pub const L2D_DROP: u64 = 0x1656_67b1_9e37_79f9;
    /// DRAM access delays.
    pub const DRAM_DELAY: u64 = 0x27d4_eb2f_1656_67c5;
    /// Stuck-thread injection at walk assignment (salted by SM index).
    pub const STUCK_THREAD: u64 = 0x8545_03b8_bf58_476d;
}

/// Counters kept by each injection site and summed into `SimStats`.
///
/// The conservation invariant is `injected_total() ==
/// recovered_injections + escalated_injections` once the simulation
/// drains: every injected fault is either recovered in place
/// (retry/watchdog) or escalated to the driver — never silently lost.
/// Delays are accounted separately (they perturb timing but need no
/// recovery).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultInjectionStats {
    /// PTE reads that returned a transiently corrupted (invalid) entry.
    pub injected_pte_corruptions: u64,
    /// PTE reads that returned a valid-but-wrong entry (PFN bits flipped,
    /// valid bit intact).
    pub injected_silent_corruptions: u64,
    /// Silent corruptions caught by the parity check at decode. With the
    /// parity-covered flip pattern the injector uses, this must equal
    /// `injected_silent_corruptions` — a shortfall means a wrong
    /// translation was consumed.
    pub detected_silent_corruptions: u64,
    /// Page-table memory responses dropped in flight.
    pub injected_mem_drops: u64,
    /// Page-table DRAM accesses delayed by `mem_delay_cycles`.
    pub injected_mem_delays: u64,
    /// PW threads wedged at walk assignment.
    pub injected_stuck_threads: u64,
    /// Injected faults whose walk subsequently completed in place.
    pub recovered_injections: u64,
    /// Injected faults whose walk was escalated to the fault buffer.
    pub escalated_injections: u64,
    /// Watchdog deadline expirations that re-issued a stalled walk step.
    pub watchdog_timeouts: u64,
    /// Bounded-backoff walk retries (any cause).
    pub walk_retries: u64,
    /// Walks handed to the fault buffer / driver after retries ran out.
    pub fault_escalations: u64,
    /// Escalated translations replayed after the driver repaired the PTE.
    pub fault_replays: u64,
    /// Escalated translations the driver could not repair (the page is
    /// genuinely unmapped): completed as a real page fault.
    pub unrecoverable_faults: u64,
    /// Fault-buffer records evicted by the capacity cap (drop-oldest).
    pub fault_buffer_overflow_drops: u64,
}

impl FaultInjectionStats {
    /// Total recovery-requiring injections (delays excluded: they perturb
    /// timing but every delayed access still completes on its own).
    pub fn injected_total(&self) -> u64 {
        self.injected_pte_corruptions
            + self.injected_silent_corruptions
            + self.injected_mem_drops
            + self.injected_stuck_threads
    }

    /// Whether any counter is nonzero (drives conditional JSON emission).
    pub fn any(&self) -> bool {
        *self != Self::default()
    }

    /// Accumulates another site's counters into this one.
    pub fn merge(&mut self, other: &FaultInjectionStats) {
        self.injected_pte_corruptions += other.injected_pte_corruptions;
        self.injected_silent_corruptions += other.injected_silent_corruptions;
        self.detected_silent_corruptions += other.detected_silent_corruptions;
        self.injected_mem_drops += other.injected_mem_drops;
        self.injected_mem_delays += other.injected_mem_delays;
        self.injected_stuck_threads += other.injected_stuck_threads;
        self.recovered_injections += other.recovered_injections;
        self.escalated_injections += other.escalated_injections;
        self.watchdog_timeouts += other.watchdog_timeouts;
        self.walk_retries += other.walk_retries;
        self.fault_escalations += other.fault_escalations;
        self.fault_replays += other.fault_replays;
        self.unrecoverable_faults += other.unrecoverable_faults;
        self.fault_buffer_overflow_drops += other.fault_buffer_overflow_drops;
    }
}

/// A per-site deterministic fault source: a salted SplitMix64 stream plus
/// the site's counters.
///
/// The RNG is inlined (rather than depending on a rand crate) so the
/// lowest-level crates can inject without new dependencies, and so the
/// stream is pinned to this exact algorithm forever — fault schedules are
/// part of experiment reproducibility.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    state: u64,
    /// Counters for everything this site injected or recovered.
    pub stats: FaultInjectionStats,
}

impl FaultInjector {
    /// Creates an injector for one site of the plan.
    pub fn new(seed: u64, salt: u64) -> Self {
        Self {
            state: seed ^ salt,
            stats: FaultInjectionStats::default(),
        }
    }

    /// Creates an injector for one instance of a replicated site (e.g.
    /// the PW Warp on SM `instance`).
    pub fn new_instance(seed: u64, salt: u64, instance: u64) -> Self {
        Self::new(seed, salt ^ instance.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Draws one Bernoulli trial at `rate`. A rate ≤ 0 returns false
    /// *without advancing the RNG*, so disabled sites stay byte-inert.
    pub fn fire(&mut self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        // 53-bit mantissa conversion, same convention as the vendored
        // rand stub's `gen_bool`.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < rate
    }

    /// Draws one raw 64-bit value from the site's stream — used to pick
    /// *which* bits a fired silent corruption flips. Only call after a
    /// [`FaultInjector::fire`] returned true, so disarmed sites still
    /// never advance their RNG.
    pub fn draw_u64(&mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_disabled() {
        let plan = FaultPlan::default();
        assert!(!plan.enabled());
    }

    #[test]
    fn nonzero_rate_enables() {
        let plan = FaultPlan {
            pte_corrupt_rate: 0.01,
            ..FaultPlan::default()
        };
        assert!(plan.enabled());
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let plan = FaultPlan {
            watchdog_cycles: 100,
            ..FaultPlan::default()
        };
        assert_eq!(plan.backoff_cycles(0), 100);
        assert_eq!(plan.backoff_cycles(1), 200);
        assert_eq!(plan.backoff_cycles(3), 800);
        // Huge retry counts must not overflow.
        assert!(plan.backoff_cycles(200) >= plan.backoff_cycles(16));
    }

    #[test]
    fn zero_rate_draws_nothing() {
        let mut inj = FaultInjector::new(42, site::PTW_PTE);
        let before = inj.state;
        for _ in 0..100 {
            assert!(!inj.fire(0.0));
        }
        assert_eq!(inj.state, before, "disabled site advanced its RNG");
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultInjector::new(7, site::L2D_DROP);
        let mut b = FaultInjector::new(7, site::L2D_DROP);
        let fire_a: Vec<bool> = (0..256).map(|_| a.fire(0.3)).collect();
        let fire_b: Vec<bool> = (0..256).map(|_| b.fire(0.3)).collect();
        assert_eq!(fire_a, fire_b);
    }

    #[test]
    fn sites_draw_independent_streams() {
        let mut a = FaultInjector::new(7, site::PTW_PTE);
        let mut b = FaultInjector::new(7, site::L2D_DROP);
        let fire_a: Vec<bool> = (0..256).map(|_| a.fire(0.5)).collect();
        let fire_b: Vec<bool> = (0..256).map(|_| b.fire(0.5)).collect();
        assert_ne!(fire_a, fire_b);
    }

    #[test]
    fn instances_draw_independent_streams() {
        let mut a = FaultInjector::new_instance(7, site::STUCK_THREAD, 0);
        let mut b = FaultInjector::new_instance(7, site::STUCK_THREAD, 1);
        let fire_a: Vec<bool> = (0..256).map(|_| a.fire(0.5)).collect();
        let fire_b: Vec<bool> = (0..256).map(|_| b.fire(0.5)).collect();
        assert_ne!(fire_a, fire_b);
    }

    #[test]
    fn rate_roughly_respected() {
        let mut inj = FaultInjector::new(123, site::DRAM_DELAY);
        let hits = (0..10_000).filter(|_| inj.fire(0.1)).count();
        assert!((800..1200).contains(&hits), "got {hits} hits at rate 0.1");
    }

    #[test]
    fn stats_conservation_helpers() {
        let mut s = FaultInjectionStats {
            injected_pte_corruptions: 2,
            injected_silent_corruptions: 2,
            detected_silent_corruptions: 2,
            injected_mem_drops: 1,
            injected_stuck_threads: 3,
            injected_mem_delays: 99, // excluded from the invariant
            ..FaultInjectionStats::default()
        };
        assert_eq!(s.injected_total(), 8);
        assert!(s.any());
        let other = FaultInjectionStats {
            recovered_injections: 5,
            escalated_injections: 3,
            ..FaultInjectionStats::default()
        };
        s.merge(&other);
        assert_eq!(
            s.injected_total(),
            s.recovered_injections + s.escalated_injections
        );
        assert!(!FaultInjectionStats::default().any());
    }
}
