//! Deterministic fault injection for the translation pipeline.
//!
//! The simulator's fault path (invalid PTE → `FFB`/fault buffer → UVM
//! driver repair → replay) is only exercisable if something can *make* a
//! walk fail. [`FaultPlan`] describes a seeded, per-site fault workload:
//! transient PTE corruption at page-table reads, dropped or delayed memory
//! responses for walker traffic, and stuck PW threads. All rates default
//! to zero, in which case every injection site is a provable no-op — no
//! RNG is constructed and no random numbers are drawn, so a zero-rate run
//! is cycle- and stats-identical to a build without the layer.
//!
//! Each injection site owns a [`FaultInjector`] seeded from
//! `plan.seed ^ SITE_SALT (^ instance)`, so outcomes are independent of
//! call interleaving across sites and fully reproducible for a fixed seed.

/// Per-site fault rates, recovery parameters and the RNG seed.
///
/// Rates are probabilities in `[0, 1]` evaluated independently at each
/// eligible event. The plan is carried by `GpuConfig`, so it participates
/// in the config fingerprint and therefore in run-cache keys.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every injection-site RNG (salted per site).
    pub seed: u64,
    /// Probability that a page-table entry read returns a transiently
    /// corrupted (invalid) entry instead of the real bytes.
    pub pte_corrupt_rate: f64,
    /// Probability that a page-table entry read returns a *valid but
    /// wrong* entry: PFN bits flipped while the valid bit stays set. The
    /// reader can only notice by verifying the PTE's parity nibble at
    /// decode — the silent-corruption blind spot this mode exists to
    /// exercise.
    pub pte_silent_corrupt_rate: f64,
    /// Probability that a completed page-table memory response is dropped
    /// (the requester's watchdog must re-issue it).
    pub mem_drop_rate: f64,
    /// Probability that a page-table DRAM access is delayed by
    /// [`FaultPlan::mem_delay_cycles`].
    pub mem_delay_rate: f64,
    /// Extra latency applied to delayed accesses.
    pub mem_delay_cycles: u64,
    /// Probability that a PW thread wedges when a walk is assigned to it
    /// (recovered by the watchdog restarting the walk).
    pub stuck_thread_rate: f64,
    /// Base per-walk watchdog timeout; retry `k` waits
    /// `watchdog_cycles << k` (exponential backoff).
    pub watchdog_cycles: u64,
    /// Retries before a walk is escalated to the fault buffer / driver.
    pub max_retries: u32,
    /// Cycles the simulated UVM driver takes to repair a PTE and trigger
    /// the replay of an escalated translation.
    pub driver_latency: u64,
    /// Probability that a driver fill completion is dropped (the
    /// generation-counted fill watchdog must re-issue it).
    pub fill_drop_rate: f64,
    /// Probability that a driver fill completion is delayed by
    /// [`FaultPlan::fill_delay_cycles`].
    pub fill_delay_rate: f64,
    /// Extra latency applied to delayed fill completions.
    pub fill_delay_cycles: u64,
    /// Probability that a driver fill completion is duplicated: a second,
    /// spurious completion arrives for an already-delivered fill and must
    /// be absorbed without double-completing the translation.
    pub fill_duplicate_rate: f64,
    /// Probability that a fill's data payload lands corrupted in the
    /// frame. The end-to-end checksum stamped at fill time is what makes
    /// this *detectable* at consumption instead of silent.
    pub fill_corrupt_rate: f64,
    /// Probability that the TLB-shootdown message for an evicted page is
    /// lost, leaving a stale translation in the shared L2 TLB.
    pub shootdown_drop_rate: f64,
    /// Probability that the driver queue wedges on a request and sits on
    /// it for another `driver_latency` before servicing (bounded by
    /// `max_retries` per request).
    pub driver_stuck_rate: f64,
    /// Checksum failures a physical frame may accumulate before it is
    /// retired to the allocator's bad-frame list instead of being reused.
    pub frame_retire_threshold: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            pte_corrupt_rate: 0.0,
            pte_silent_corrupt_rate: 0.0,
            mem_drop_rate: 0.0,
            mem_delay_rate: 0.0,
            mem_delay_cycles: 500,
            stuck_thread_rate: 0.0,
            watchdog_cycles: 5_000,
            max_retries: 3,
            driver_latency: 2_000,
            fill_drop_rate: 0.0,
            fill_delay_rate: 0.0,
            fill_delay_cycles: 3_000,
            fill_duplicate_rate: 0.0,
            fill_corrupt_rate: 0.0,
            shootdown_drop_rate: 0.0,
            driver_stuck_rate: 0.0,
            frame_retire_threshold: 2,
        }
    }
}

impl FaultPlan {
    /// Whether any injection site can fire. When false the entire layer
    /// is inert and the simulator behaves exactly as if it did not exist.
    pub fn enabled(&self) -> bool {
        self.pte_corrupt_rate > 0.0
            || self.pte_silent_corrupt_rate > 0.0
            || self.mem_drop_rate > 0.0
            || self.mem_delay_rate > 0.0
            || self.stuck_thread_rate > 0.0
    }

    /// Whether any demand-paging data-path site can fire. Independent of
    /// [`FaultPlan::enabled`] (the walk sites): a plan may storm the fill
    /// pipeline while leaving page-table walks untouched, and vice versa.
    pub fn data_path_enabled(&self) -> bool {
        self.fill_drop_rate > 0.0
            || self.fill_delay_rate > 0.0
            || self.fill_duplicate_rate > 0.0
            || self.fill_corrupt_rate > 0.0
            || self.shootdown_drop_rate > 0.0
            || self.driver_stuck_rate > 0.0
    }

    /// Watchdog deadline delta for a walk that has already retried
    /// `retries` times (exponential backoff, saturating shift).
    pub fn backoff_cycles(&self, retries: u32) -> u64 {
        let shift = retries.min(16);
        self.watchdog_cycles.saturating_mul(1u64 << shift)
    }
}

/// The deterministic end-to-end data checksum stamped into a frame's
/// first word at fill time and re-derived at consumption. Keyed by the
/// page *and* the fill generation so a stale frame (filled for an earlier
/// tenant, or an earlier fill of the same page) never verifies.
pub fn data_checksum(vpn: u64, generation: u64) -> u64 {
    let mut z = vpn
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(generation.wrapping_mul(0xc2b2_ae3d_27d4_eb4f));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    // Never stamp 0: an unbacked frame reads as 0, and a checksum that
    // collides with "no data" would make a lost fill look verified.
    (z ^ (z >> 31)) | 1
}

/// Site salts: injectors at different sites must draw independent
/// streams even though they share the plan seed.
pub mod site {
    /// Page-table entry reads by the hardware PTW pool.
    pub const PTW_PTE: u64 = 0x9e37_79b9_7f4a_7c15;
    /// Page-table entry reads by a PW Warp (salted again by SM index).
    pub const PW_WARP_PTE: u64 = 0xc2b2_ae3d_27d4_eb4f;
    /// L2 data cache response drops.
    pub const L2D_DROP: u64 = 0x1656_67b1_9e37_79f9;
    /// DRAM access delays.
    pub const DRAM_DELAY: u64 = 0x27d4_eb2f_1656_67c5;
    /// Stuck-thread injection at walk assignment (salted by SM index).
    pub const STUCK_THREAD: u64 = 0x8545_03b8_bf58_476d;
    /// Driver fill completions (drop / delay / duplicate decisions).
    pub const FILL_COMPLETE: u64 = 0x94d0_49bb_1331_11eb;
    /// Fill data payload corruption (and the garble pattern draw).
    pub const FILL_PAYLOAD: u64 = 0xd6e8_feb8_6659_fd93;
    /// TLB-shootdown message drops on eviction.
    pub const SHOOTDOWN: u64 = 0xbf58_476d_1ce4_e5b9;
    /// Stuck driver-queue service.
    pub const DRIVER_QUEUE: u64 = 0x2545_f491_4f6c_dd1d;
}

/// Counters kept by each injection site and summed into `SimStats`.
///
/// The conservation invariant is `injected_total() ==
/// recovered_injections + escalated_injections` once the simulation
/// drains: every injected fault is either recovered in place
/// (retry/watchdog) or escalated to the driver — never silently lost.
/// Delays are accounted separately (they perturb timing but need no
/// recovery).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultInjectionStats {
    /// PTE reads that returned a transiently corrupted (invalid) entry.
    pub injected_pte_corruptions: u64,
    /// PTE reads that returned a valid-but-wrong entry (PFN bits flipped,
    /// valid bit intact).
    pub injected_silent_corruptions: u64,
    /// Silent corruptions caught by the parity check at decode. With the
    /// parity-covered flip pattern the injector uses, this must equal
    /// `injected_silent_corruptions` — a shortfall means a wrong
    /// translation was consumed.
    pub detected_silent_corruptions: u64,
    /// Page-table memory responses dropped in flight.
    pub injected_mem_drops: u64,
    /// Page-table DRAM accesses delayed by `mem_delay_cycles`.
    pub injected_mem_delays: u64,
    /// PW threads wedged at walk assignment.
    pub injected_stuck_threads: u64,
    /// Injected faults whose walk subsequently completed in place.
    pub recovered_injections: u64,
    /// Injected faults whose walk was escalated to the fault buffer.
    pub escalated_injections: u64,
    /// Watchdog deadline expirations that re-issued a stalled walk step.
    pub watchdog_timeouts: u64,
    /// Bounded-backoff walk retries (any cause).
    pub walk_retries: u64,
    /// Walks handed to the fault buffer / driver after retries ran out.
    pub fault_escalations: u64,
    /// Escalated translations replayed after the driver repaired the PTE.
    pub fault_replays: u64,
    /// Escalated translations the driver could not repair (the page is
    /// genuinely unmapped): completed as a real page fault.
    pub unrecoverable_faults: u64,
    /// Fault-buffer records evicted by the capacity cap (drop-oldest).
    pub fault_buffer_overflow_drops: u64,
}

impl FaultInjectionStats {
    /// Total recovery-requiring injections (delays excluded: they perturb
    /// timing but every delayed access still completes on its own).
    pub fn injected_total(&self) -> u64 {
        self.injected_pte_corruptions
            + self.injected_silent_corruptions
            + self.injected_mem_drops
            + self.injected_stuck_threads
    }

    /// Whether any counter is nonzero (drives conditional JSON emission).
    pub fn any(&self) -> bool {
        *self != Self::default()
    }

    /// Accumulates another site's counters into this one.
    pub fn merge(&mut self, other: &FaultInjectionStats) {
        self.injected_pte_corruptions += other.injected_pte_corruptions;
        self.injected_silent_corruptions += other.injected_silent_corruptions;
        self.detected_silent_corruptions += other.detected_silent_corruptions;
        self.injected_mem_drops += other.injected_mem_drops;
        self.injected_mem_delays += other.injected_mem_delays;
        self.injected_stuck_threads += other.injected_stuck_threads;
        self.recovered_injections += other.recovered_injections;
        self.escalated_injections += other.escalated_injections;
        self.watchdog_timeouts += other.watchdog_timeouts;
        self.walk_retries += other.walk_retries;
        self.fault_escalations += other.fault_escalations;
        self.fault_replays += other.fault_replays;
        self.unrecoverable_faults += other.unrecoverable_faults;
        self.fault_buffer_overflow_drops += other.fault_buffer_overflow_drops;
    }
}

/// Counters for the demand-paging data-path fault pipeline, summed into
/// `SimStats` as the `mm_fault_*` / `data_*` block.
///
/// Two conservation invariants hold once the simulation drains:
///
/// 1. [`MmFaultStats::injected_conserved`] `== recovered_fills +
///    escalated_fills + retired_fills` — every recovery-requiring
///    injection is eventually recovered in place, escalated to the fault
///    buffer / driver replay, or resolved by retiring the failing frame.
///    Delays are excluded (a delayed completion still arrives on its
///    own), mirroring the walk-side convention.
/// 2. `injected_fill_corruptions == detected_corruptions` — the
///    end-to-end checksum catches every corrupted payload, at
///    consumption or at the eviction-time scrub; a shortfall means an SM
///    consumed bad data silently.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MmFaultStats {
    /// Driver fill completions dropped in flight.
    pub injected_fill_drops: u64,
    /// Driver fill completions delayed by `fill_delay_cycles`.
    pub injected_fill_delays: u64,
    /// Spurious duplicate fill completions injected.
    pub injected_fill_duplicates: u64,
    /// Fill payloads corrupted in the frame at fill time.
    pub injected_fill_corruptions: u64,
    /// TLB-shootdown messages lost on eviction.
    pub injected_shootdown_drops: u64,
    /// Driver-queue service stalls injected.
    pub injected_driver_stalls: u64,
    /// Checksum mismatches caught (at consumption or eviction scrub).
    pub detected_corruptions: u64,
    /// Stale translations caught by the consumption check: an L2 TLB hit
    /// (or a completion that raced an eviction) whose frame no longer
    /// belongs to the page. Not part of the conservation sum — staleness
    /// is the *symptom*; the dropped shootdown that caused it is the
    /// injection being conserved.
    pub detected_stale_hits: u64,
    /// Injections that resolved through the normal machinery (the fill
    /// completed, a duplicate was absorbed, a stale entry was refreshed).
    pub recovered_fills: u64,
    /// Injections resolved by escalating the fill to the fault buffer
    /// and a last-resort driver replay.
    pub escalated_fills: u64,
    /// Injections resolved by retiring the failing frame and re-filling
    /// the page elsewhere.
    pub retired_fills: u64,
    /// Physical frames moved to the allocator's bad-frame list.
    pub frames_retired: u64,
    /// Fill-watchdog deadline expirations.
    pub fill_watchdog_timeouts: u64,
    /// Bounded-backoff fill completion re-issues.
    pub fill_retries: u64,
}

impl MmFaultStats {
    /// Total recovery-requiring data-path injections (delays excluded).
    pub fn injected_conserved(&self) -> u64 {
        self.injected_fill_drops
            + self.injected_fill_duplicates
            + self.injected_fill_corruptions
            + self.injected_shootdown_drops
            + self.injected_driver_stalls
    }

    /// Whether any counter is nonzero (drives conditional JSON emission).
    pub fn any(&self) -> bool {
        *self != Self::default()
    }

    /// Accumulates another component's counters into this one.
    pub fn merge(&mut self, other: &MmFaultStats) {
        self.injected_fill_drops += other.injected_fill_drops;
        self.injected_fill_delays += other.injected_fill_delays;
        self.injected_fill_duplicates += other.injected_fill_duplicates;
        self.injected_fill_corruptions += other.injected_fill_corruptions;
        self.injected_shootdown_drops += other.injected_shootdown_drops;
        self.injected_driver_stalls += other.injected_driver_stalls;
        self.detected_corruptions += other.detected_corruptions;
        self.detected_stale_hits += other.detected_stale_hits;
        self.recovered_fills += other.recovered_fills;
        self.escalated_fills += other.escalated_fills;
        self.retired_fills += other.retired_fills;
        self.frames_retired += other.frames_retired;
        self.fill_watchdog_timeouts += other.fill_watchdog_timeouts;
        self.fill_retries += other.fill_retries;
    }
}

/// A per-site deterministic fault source: a salted SplitMix64 stream plus
/// the site's counters.
///
/// The RNG is inlined (rather than depending on a rand crate) so the
/// lowest-level crates can inject without new dependencies, and so the
/// stream is pinned to this exact algorithm forever — fault schedules are
/// part of experiment reproducibility.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    state: u64,
    /// Counters for everything this site injected or recovered.
    pub stats: FaultInjectionStats,
}

impl FaultInjector {
    /// Creates an injector for one site of the plan.
    pub fn new(seed: u64, salt: u64) -> Self {
        Self {
            state: seed ^ salt,
            stats: FaultInjectionStats::default(),
        }
    }

    /// Creates an injector for one instance of a replicated site (e.g.
    /// the PW Warp on SM `instance`).
    pub fn new_instance(seed: u64, salt: u64, instance: u64) -> Self {
        Self::new(seed, salt ^ instance.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Draws one Bernoulli trial at `rate`. A rate ≤ 0 returns false
    /// *without advancing the RNG*, so disabled sites stay byte-inert.
    pub fn fire(&mut self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        // 53-bit mantissa conversion, same convention as the vendored
        // rand stub's `gen_bool`.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < rate
    }

    /// Draws one raw 64-bit value from the site's stream — used to pick
    /// *which* bits a fired silent corruption flips. Only call after a
    /// [`FaultInjector::fire`] returned true, so disarmed sites still
    /// never advance their RNG.
    pub fn draw_u64(&mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_disabled() {
        let plan = FaultPlan::default();
        assert!(!plan.enabled());
    }

    #[test]
    fn nonzero_rate_enables() {
        let plan = FaultPlan {
            pte_corrupt_rate: 0.01,
            ..FaultPlan::default()
        };
        assert!(plan.enabled());
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let plan = FaultPlan {
            watchdog_cycles: 100,
            ..FaultPlan::default()
        };
        assert_eq!(plan.backoff_cycles(0), 100);
        assert_eq!(plan.backoff_cycles(1), 200);
        assert_eq!(plan.backoff_cycles(3), 800);
        // Huge retry counts must not overflow.
        assert!(plan.backoff_cycles(200) >= plan.backoff_cycles(16));
    }

    #[test]
    fn zero_rate_draws_nothing() {
        let mut inj = FaultInjector::new(42, site::PTW_PTE);
        let before = inj.state;
        for _ in 0..100 {
            assert!(!inj.fire(0.0));
        }
        assert_eq!(inj.state, before, "disabled site advanced its RNG");
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultInjector::new(7, site::L2D_DROP);
        let mut b = FaultInjector::new(7, site::L2D_DROP);
        let fire_a: Vec<bool> = (0..256).map(|_| a.fire(0.3)).collect();
        let fire_b: Vec<bool> = (0..256).map(|_| b.fire(0.3)).collect();
        assert_eq!(fire_a, fire_b);
    }

    #[test]
    fn sites_draw_independent_streams() {
        let mut a = FaultInjector::new(7, site::PTW_PTE);
        let mut b = FaultInjector::new(7, site::L2D_DROP);
        let fire_a: Vec<bool> = (0..256).map(|_| a.fire(0.5)).collect();
        let fire_b: Vec<bool> = (0..256).map(|_| b.fire(0.5)).collect();
        assert_ne!(fire_a, fire_b);
    }

    #[test]
    fn instances_draw_independent_streams() {
        let mut a = FaultInjector::new_instance(7, site::STUCK_THREAD, 0);
        let mut b = FaultInjector::new_instance(7, site::STUCK_THREAD, 1);
        let fire_a: Vec<bool> = (0..256).map(|_| a.fire(0.5)).collect();
        let fire_b: Vec<bool> = (0..256).map(|_| b.fire(0.5)).collect();
        assert_ne!(fire_a, fire_b);
    }

    #[test]
    fn rate_roughly_respected() {
        let mut inj = FaultInjector::new(123, site::DRAM_DELAY);
        let hits = (0..10_000).filter(|_| inj.fire(0.1)).count();
        assert!((800..1200).contains(&hits), "got {hits} hits at rate 0.1");
    }

    #[test]
    fn data_path_arming_is_independent_of_walk_arming() {
        let walk_only = FaultPlan {
            pte_corrupt_rate: 0.1,
            ..FaultPlan::default()
        };
        assert!(walk_only.enabled() && !walk_only.data_path_enabled());
        for set in [
            |p: &mut FaultPlan| p.fill_drop_rate = 0.1,
            |p: &mut FaultPlan| p.fill_delay_rate = 0.1,
            |p: &mut FaultPlan| p.fill_duplicate_rate = 0.1,
            |p: &mut FaultPlan| p.fill_corrupt_rate = 0.1,
            |p: &mut FaultPlan| p.shootdown_drop_rate = 0.1,
            |p: &mut FaultPlan| p.driver_stuck_rate = 0.1,
        ] {
            let mut plan = FaultPlan::default();
            set(&mut plan);
            assert!(plan.data_path_enabled() && !plan.enabled());
        }
    }

    #[test]
    fn data_checksum_is_keyed_by_page_and_generation() {
        assert_eq!(data_checksum(7, 1), data_checksum(7, 1));
        assert_ne!(data_checksum(7, 1), data_checksum(8, 1));
        assert_ne!(data_checksum(7, 1), data_checksum(7, 2));
        for v in 0..64 {
            assert_ne!(data_checksum(v, v), 0, "checksum collides with zero");
        }
    }

    #[test]
    fn mm_fault_stats_conservation_helpers() {
        let mut s = MmFaultStats {
            injected_fill_drops: 2,
            injected_fill_duplicates: 1,
            injected_fill_corruptions: 3,
            injected_shootdown_drops: 1,
            injected_driver_stalls: 1,
            injected_fill_delays: 50, // excluded from the invariant
            detected_stale_hits: 9,   // symptom counter, also excluded
            ..MmFaultStats::default()
        };
        assert_eq!(s.injected_conserved(), 8);
        assert!(s.any());
        let other = MmFaultStats {
            recovered_fills: 5,
            escalated_fills: 2,
            retired_fills: 1,
            frames_retired: 1,
            detected_corruptions: 3,
            ..MmFaultStats::default()
        };
        s.merge(&other);
        assert_eq!(
            s.injected_conserved(),
            s.recovered_fills + s.escalated_fills + s.retired_fills
        );
        assert_eq!(s.injected_fill_corruptions, s.detected_corruptions);
        assert!(!MmFaultStats::default().any());
    }

    #[test]
    fn stats_conservation_helpers() {
        let mut s = FaultInjectionStats {
            injected_pte_corruptions: 2,
            injected_silent_corruptions: 2,
            detected_silent_corruptions: 2,
            injected_mem_drops: 1,
            injected_stuck_threads: 3,
            injected_mem_delays: 99, // excluded from the invariant
            ..FaultInjectionStats::default()
        };
        assert_eq!(s.injected_total(), 8);
        assert!(s.any());
        let other = FaultInjectionStats {
            recovered_injections: 5,
            escalated_injections: 3,
            ..FaultInjectionStats::default()
        };
        s.merge(&other);
        assert_eq!(
            s.injected_total(),
            s.recovered_injections + s.escalated_injections
        );
        assert!(!FaultInjectionStats::default().any());
    }
}
