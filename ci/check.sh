#!/bin/sh
# The full tier-1 gate, runnable locally or in CI:
#   sh ci/check.sh
# Fails on the first broken step. Mirrors .github/workflows/ci.yml.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> fault-injection smoke (release)"
cargo run --release -q -p swgpu-bench --bin fault_smoke

echo "==> run-cache round trip (fig09: trace-capped cells must disk-hit)"
# Two invocations of the same figure against a scratch cache: the first
# populates it, the second must simulate nothing — including the
# trace-capped Figure 9 cells, whose walk traces ride in the schema-v2
# artifacts.
SWGPU_RUN_CACHE="target/ci-run-cache-$$" ; export SWGPU_RUN_CACHE
rm -rf "$SWGPU_RUN_CACHE"
cargo run --release -q -p swgpu-bench --bin fig09_timeline -- --quick >/dev/null 2>&1
second=$(cargo run --release -q -p swgpu-bench --bin fig09_timeline -- --quick 2>&1 >/dev/null | grep "totals:")
rm -rf "$SWGPU_RUN_CACHE"
unset SWGPU_RUN_CACHE
case "$second" in
  *"totals: 0 simulated,"*) echo "    cache hit: $second" ;;
  *) echo "FAIL: second fig09 run re-simulated: $second"; exit 1 ;;
esac

echo "All checks passed."
