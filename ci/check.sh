#!/bin/sh
# The full tier-1 gate, runnable locally or in CI:
#   sh ci/check.sh
# Fails on the first broken step. Mirrors .github/workflows/ci.yml.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> fault-injection smoke (release)"
cargo run --release -q -p swgpu-bench --bin fault_smoke

echo "All checks passed."
