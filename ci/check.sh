#!/bin/sh
# The full tier-1 gate, runnable locally or in CI:
#   sh ci/check.sh
# Fails on the first broken step. Mirrors .github/workflows/ci.yml.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> fault-injection smoke (release)"
cargo run --release -q -p swgpu-bench --bin fault_smoke

echo "==> event-kernel smoke (dense equivalence + skipped-cycle floor)"
# Drain-heavy cells on both simulation kernels: statistics must be
# byte-identical, and the event kernel must skip a healthy fraction of
# cycles (a regression to per-cycle ticking keeps equivalence but
# fails the floor).
cargo run --release -q -p swgpu-bench --bin kernel_smoke

echo "==> demand-paging smoke (release)"
# Demand-paged cells on every walker kind: fault conservation
# (major_faults == major_replays, software fills on PW Warps), bounded
# eviction under a resident-page budget, at least one 64K coalesce on
# the sequential-touch recipe, and a prebuilt-mode rerun that simulates
# nothing (mm stays off the cache path).
cargo run --release -q -p swgpu-bench --bin mm_smoke

echo "==> data-path fault smoke (release)"
# Fill-pipeline fault storms on every walker kind: the data-path ledger
# balances (injected = recovered + escalated + retired), the end-to-end
# checksum catches every corrupted payload, an armed-but-zero plan is a
# byte-level no-op, and a corruption-heavy recipe retires frames to the
# allocator's bad-frame list.
cargo run --release -q -p swgpu-bench --bin mm_fault_smoke

echo "==> translation-policy smoke (release)"
# Dead-entry replacement + translation prefetch: explicit default knobs
# are a byte-level no-op (stats and fingerprint), DeadBlock clears its
# MPKI floor on an irregular cell, and the prefetch ledger conserves
# (issued = useful + late + evicted + in-flight) deterministically.
cargo run --release -q -p swgpu-bench --bin policy_smoke

echo "==> multi-tenant smoke (release)"
# ASID-keyed translation stack: the golden single-tenant fingerprint is
# intact (no cached artifact invalidated) and tenant-free runs emit no
# tenant keys; a two-tenant irregular+regular mix conserves the walk
# ledger (sum of per-tenant walks == completed translations) under both
# sharing policies, keeps Jain's fairness index in bounds, and reruns
# byte-identically.
cargo run --release -q -p swgpu-bench --bin tenant_smoke

echo "==> run-cache round trip (fig09: trace-capped cells must disk-hit)"
# Two invocations of the same figure against a scratch cache: the first
# populates it, the second must simulate nothing — including the
# trace-capped Figure 9 cells, whose walk traces ride in the schema-v7
# artifacts.
SWGPU_RUN_CACHE="target/ci-run-cache-$$" ; export SWGPU_RUN_CACHE
rm -rf "$SWGPU_RUN_CACHE"
cargo run --release -q -p swgpu-bench --bin fig09_timeline -- --quick >/dev/null 2>&1
second=$(cargo run --release -q -p swgpu-bench --bin fig09_timeline -- --quick 2>&1 >/dev/null | grep "totals:")
rm -rf "$SWGPU_RUN_CACHE"
unset SWGPU_RUN_CACHE
case "$second" in
  *"totals: 0 simulated,"*) echo "    cache hit: $second" ;;
  *) echo "FAIL: second fig09 run re-simulated: $second"; exit 1 ;;
esac

echo "==> observability trace export (fig09 --trace-out: Perfetto JSON)"
# Obs-armed fig09 against its own scratch cache: the exported Chrome
# trace must self-validate (the binary prints "trace OK" only after
# swgpu_obs::validate_json passes), contain duration spans ("ph":"X")
# and counter tracks ("ph":"C"), and a repeat invocation must serve the
# obs-bearing artifacts entirely from disk.
SWGPU_RUN_CACHE="target/ci-obs-cache-$$" ; export SWGPU_RUN_CACHE
TRACE_DIR="target/ci-obs-traces-$$"
rm -rf "$SWGPU_RUN_CACHE" "$TRACE_DIR"
out=$(cargo run --release -q -p swgpu-bench --bin fig09_timeline -- --quick --trace-out "$TRACE_DIR" 2>/dev/null)
case "$out" in
  *"trace OK:"*) echo "    traces exported and validated" ;;
  *) echo "FAIL: fig09 --trace-out printed no 'trace OK' line"; exit 1 ;;
esac
for f in "$TRACE_DIR"/fig09-*.json; do
  [ -s "$f" ] || { echo "FAIL: empty trace file $f"; exit 1; }
  grep -q '"ph":"X"' "$f" || { echo "FAIL: no duration spans in $f"; exit 1; }
  grep -q '"ph":"C"' "$f" || { echo "FAIL: no counter track in $f"; exit 1; }
done
# --trace-out also streams one SWTB binary per obs cell; each must pass
# trace_tool's structural validation.
for f in "$TRACE_DIR"/*.swtb; do
  [ -s "$f" ] || { echo "FAIL: empty SWTB stream file $f"; exit 1; }
done
cargo run --release -q -p swgpu-bench --bin trace_tool -- validate "$TRACE_DIR"/*.swtb
second=$(cargo run --release -q -p swgpu-bench --bin fig09_timeline -- --quick --trace-out "$TRACE_DIR" 2>&1 >/dev/null | grep "totals:")
rm -rf "$SWGPU_RUN_CACHE" "$TRACE_DIR"
unset SWGPU_RUN_CACHE
case "$second" in
  *"totals: 0 simulated,"*) echo "    obs cache hit: $second" ;;
  *) echo "FAIL: second obs-armed fig09 run re-simulated: $second"; exit 1 ;;
esac

echo "==> streaming trace pipeline smoke (obs_stream_smoke + trace_tool)"
# A full-detail cell with a deliberately tiny span staging buffer and an
# SWTB file sink attached: zero drops with the sink in place, the file
# reconstructs the complete span set, and the Perfetto conversion
# self-validates. trace_tool then re-validates and converts the file.
STREAM_DIR="target/ci-stream-smoke-$$"
rm -rf "$STREAM_DIR"
out=$(cargo run --release -q -p swgpu-bench --bin obs_stream_smoke -- "$STREAM_DIR" --quick)
case "$out" in
  *"stream smoke OK:"*) echo "    $out" ;;
  *) echo "FAIL: obs_stream_smoke printed no OK line: $out"; exit 1 ;;
esac
cargo run --release -q -p swgpu-bench --bin trace_tool -- validate "$STREAM_DIR"/*.swtb
cargo run --release -q -p swgpu-bench --bin trace_tool -- to-perfetto "$STREAM_DIR"/*.swtb "$STREAM_DIR/smoke.json"
grep -q '"ph":"X"' "$STREAM_DIR/smoke.json" || { echo "FAIL: no duration spans in converted trace"; exit 1; }
rm -rf "$STREAM_DIR"

echo "All checks passed."
